package lht

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/metrics"
	"lht/internal/record"
)

var (
	// ErrKeyNotFound reports an exact-match query or deletion for a data
	// key that is not indexed.
	ErrKeyNotFound = errors.New("lht: data key not found")
	// ErrEmpty reports a min/max query against an index with no records.
	ErrEmpty = errors.New("lht: index is empty")
	// ErrCorrupt reports an index state the algorithms cannot explain,
	// e.g. a bucket missing where the naming invariants require one. It
	// indicates a bug or an unsynchronized concurrent writer.
	ErrCorrupt = errors.New("lht: corrupt index state")
)

// Cost reports the DHT traffic of a single index operation; see
// metrics.Cost.
type Cost = metrics.Cost

// Index is an LHT index over a DHT substrate. Create one with New.
//
// Concurrency contract: every operation is safe to call concurrently from
// any number of goroutines — readers and writers alike, across any number
// of Index clients sharing one substrate. Mutations are optimistic: each
// bucket carries a monotonic epoch, every read-modify-write commits with
// an epoch-guarded conditional put (dht.Conditional), and a writer that
// loses the compare-and-swap re-fetches the bucket, rebases its mutation
// on the winner, and retries until it commits or its context ends. Lost
// rounds and retries are visible in the Write counter group of Metrics.
// Structural mutations (splits, merges) are likewise fenced: the
// write-ahead intent takes the bucket's next epoch, so racing writers
// either see the intent (and help complete it idempotently) or conflict
// and retry — two clients racing one split converge on one winner and one
// idempotent repair.
//
// On substrates without native conditional writes the commit degrades to
// a fetch-verify-write emulation (counted in Write.CASFallbacks), which
// closes no race window; true multi-writer safety needs a Conditional
// substrate (Local, Chord, Kademlia and tcpnet all qualify).
type Index struct {
	d     dht.DHT
	raw   dht.DHT // bare substrate, below all wrapping; membership probes
	cfg   Config
	c     *metrics.Counters
	cache *leafCache   // nil unless Config.LeafCache
	now   func() int64 // rate-estimator clock (UnixNano); cfg.clock or real time

	mu        sync.Mutex
	alphaSum  float64 // sum over splits of (remote bucket weight / theta)
	overflows int64   // splits skipped because the leaf was already at depth D
}

// New creates an index client over d. If the substrate does not yet hold
// an LHT (no bucket under the virtual-root key "#"), New bootstraps the
// empty tree: the single leaf "#0" stored under its name "#". Bootstrap
// traffic is not charged to the index counters.
//
// When cfg.Policy is set, the substrate stack becomes
// policy(instrumented(d)): transient faults are retried per the policy,
// and because the retry layer sits above the instrumentation, every
// attempt is charged as a DHT-lookup. When cfg.CoalesceGets or
// cfg.HedgeAfter is set, the singleflight and hedging layers sit *below*
// the instrumentation — policy(instrumented(coalesce(hedge(d)))) — so
// coalesced reads are still charged as lookups, a hedge is a physical
// round trip rather than a logical lookup, and only the traffic the cost
// model does not count changes.
func New(d dht.DHT, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	raw := d // keep the bare substrate for membership-plane interfaces
	ctx := context.Background()
	if _, err := d.Get(ctx, bitlabel.Root.Key()); err != nil {
		if !errors.Is(err, dht.ErrNotFound) {
			return nil, fmt.Errorf("lht: probe substrate: %w", err)
		}
		// Create-if-absent: two clients bootstrapping concurrently converge
		// on one empty tree instead of the loser clobbering a root the
		// winner may already have grown.
		err := dht.DoCreateIf(ctx, d, bitlabel.Root.Key(), &Bucket{Label: bitlabel.TreeRoot})
		if err != nil && !errors.Is(err, dht.ErrCASConflict) {
			return nil, fmt.Errorf("lht: bootstrap: %w", err)
		}
	}
	c := &metrics.Counters{}
	if cfg.Aggregate != nil {
		c.Chain(cfg.Aggregate)
	}
	if cfg.HedgeAfter > 0 {
		d = dht.WithHedging(d, cfg.HedgeAfter, c)
	}
	if cfg.CoalesceGets {
		d = dht.WithCoalescing(d, c)
	}
	inst := dht.NewInstrumented(d, c)
	if cfg.TraceSink != nil {
		inst.SetSink(cfg.TraceSink)
	}
	stack := dht.DHT(inst)
	if cfg.Policy != nil {
		p := *cfg.Policy
		p.Counters = c
		stack = dht.WithPolicy(stack, p)
	}
	ix := &Index{d: stack, raw: raw, cfg: cfg, c: c, now: cfg.clock}
	if ix.now == nil {
		ix.now = func() int64 { return time.Now().UnixNano() }
	}
	if cfg.LeafCache {
		ix.cache = newLeafCache(cfg.leafCacheSize())
	}
	return ix, nil
}

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.cfg }

// Metrics returns the cumulative cost counters of this index client,
// grouped by concern (Lookup, Cache, Retry, Batch, Repair) plus the
// per-operation-class latency histograms and phase-attribution matrix
// (Latency). Use Snapshot.Flat for the legacy one-level field names.
func (ix *Index) Metrics() metrics.Snapshot { return ix.c.Snapshot() }

// Counters exposes the live counter set, e.g. to serve a /metrics
// endpoint without snapshotting on every increment.
func (ix *Index) Counters() *metrics.Counters { return ix.c }

// beginOp opens an operation scope for the observability plane: the
// returned context carries the operation class (so the instrumentation
// layer attributes each DHT-lookup to it), and the returned finish
// function records the operation's end-to-end latency and outcome. Every
// public entry point calls it exactly once.
func (ix *Index) beginOp(ctx context.Context, op metrics.Op) (context.Context, func(error)) {
	start := time.Now()
	return metrics.WithOp(ctx, op), func(err error) {
		ix.c.ObserveOp(op, time.Since(start), err != nil)
	}
}

// AlphaMean returns the average alpha (remote-bucket fraction of
// theta_split, section 8.2) over all splits performed by this client, and
// the number of splits. It returns 0, 0 before the first split.
func (ix *Index) AlphaMean() (mean float64, splits int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := ix.c.Snapshot().Lookup.Splits
	if n == 0 {
		return 0, 0
	}
	return ix.alphaSum / float64(n), n
}

// Overflows returns the number of insertions that found a full leaf
// already at maximum depth D, where splitting is impossible and the bucket
// is allowed to exceed theta_split. A nonzero value means Depth is too
// small for the data size.
func (ix *Index) Overflows() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.overflows
}

// fetchBucket is the shared fetch-and-type-assert behind both cost
// paths (getBucket charges a *Cost, getBucketC a rangeCollector). Every
// bucket fetched from the DHT is a current leaf, so the fetch is also
// where the leaf cache learns: any successful get notes the leaf's
// label, covering lookup probes, range forwarding, scans and walks.
func (ix *Index) fetchBucket(ctx context.Context, key string) (*Bucket, error) {
	v, err := ix.d.Get(ctx, key)
	return ix.bucketOf(v, err, key)
}

// bucketOf type-asserts one get outcome (per-op or one slot of a batched
// multi-get) into a bucket, teaching the leaf cache on success.
func (ix *Index) bucketOf(v dht.Value, err error, key string) (*Bucket, error) {
	if err != nil {
		return nil, err
	}
	b, ok := v.(*Bucket)
	if !ok {
		return nil, fmt.Errorf("%w: key %q holds %T, not a bucket", ErrCorrupt, key, v)
	}
	ix.cacheNote(b.Label)
	return b, nil
}

// getBucket fetches and type-asserts a bucket, charging cost.
func (ix *Index) getBucket(ctx context.Context, key string, cost *Cost) (*Bucket, error) {
	cost.Lookups++
	return ix.fetchBucket(ctx, key)
}

// LookupBucket implements LHT-lookup (Algorithm 2): a binary search over
// the prefix lengths of mu(delta, D) that returns the leaf bucket covering
// delta. The search probes the *names* f_n(x) of candidate prefixes: a
// failed DHT-get proves every prefix sharing that name is too long
// (longer bound becomes len(f_n(x))); a bucket that does not cover delta
// proves x is an internal node (shorter bound becomes len(f_nn(x, mu))).
//
// The returned Cost counts one lookup per DHT-get; Steps equals Lookups
// because the probes are sequential.
func (ix *Index) LookupBucket(delta float64) (*Bucket, Cost, error) {
	return ix.LookupBucketContext(context.Background(), delta)
}

// LookupBucketContext is LookupBucket with a caller-supplied context
// bounding the underlying DHT traffic.
func (ix *Index) LookupBucketContext(ctx context.Context, delta float64) (b *Bucket, cost Cost, err error) {
	ctx, done := ix.beginOp(ctx, metrics.OpGet)
	defer func() { done(err) }()
	b, _, cost, err = ix.lookup(ctx, delta)
	return b, cost, err
}

// lookup is LookupBucket returning also the bucket's DHT key. With the
// leaf cache enabled it first probes the name of the deepest cached
// leaf covering delta: a covering bucket back is a hit (one DHT-get);
// any other outcome is a soundly detected stale entry, which is dropped
// and converted into tightened binary-search bounds (see repair cases
// below), so cached results are always identical to the uncached path.
func (ix *Index) lookup(ctx context.Context, delta float64) (*Bucket, string, Cost, error) {
	// Every probe of the binary search (and of the cache pre-probe) is
	// PhaseProbe traffic; repairTorn overrides the phase for the repair
	// writes it issues.
	ctx = metrics.WithPhase(ctx, metrics.PhaseProbe)
	var cost Cost
	mu, err := keyspace.Mu(delta, ix.cfg.Depth)
	if err != nil {
		return nil, "", cost, err
	}
	lo, hi := 1, ix.cfg.Depth
	if ix.cache != nil {
		if x, ok := ix.cache.find(mu); ok {
			name := x.Name()
			b, err := ix.getBucket(ctx, name.Key(), &cost)
			if err == nil && b.Torn() {
				// The cached leaf's peer holds a torn mutation from a
				// crashed writer; finish it, then apply the normal case
				// analysis to the repaired bucket.
				b, err = ix.repairTorn(ctx, name.Key(), b, &cost)
			}
			switch {
			case err == nil && b.Contains(delta):
				// Hit. The fetched label can differ from the cached one
				// (the leaf split but this half kept the name and still
				// covers delta); fetchBucket noted the fresh label, so
				// just retire the stale entry.
				ix.c.AddCacheHits(1)
				if b.Label != x {
					ix.cache.drop(x)
				}
				cost.Steps = cost.Lookups
				return b, name.Key(), cost, nil
			case errors.Is(err, dht.ErrNotFound):
				// The cached leaf's name is gone (a merge removed it).
				// Algorithm 2's miss rule applies to this probe exactly
				// as to its own: every prefix of mu longer than f_n(x)
				// up to x shares the missing name, so the covering leaf
				// is at most len(f_n(x)) deep.
				ix.c.AddCacheStale(1)
				ix.cache.drop(x)
				hi = name.Len()
			case err != nil:
				cost.Steps = cost.Lookups
				return nil, "", cost, err
			default:
				// A leaf answered under f_n(x) but does not cover delta,
				// so x is now an internal node (the leaf split):
				// Algorithm 2's non-covering rule moves the lower bound
				// past x's trailing run. If mu never leaves that run
				// there is no tighter bound; fall back to the full
				// search.
				ix.c.AddCacheStale(1)
				ix.cache.drop(x)
				if next, ok := x.NextName(mu); ok {
					lo = next.Len()
				}
			}
		} else {
			ix.c.AddCacheMisses(1)
		}
	}
	// Algorithm 2's case analysis is sound against a static tree, but the
	// probes of one search are not atomic: a concurrent split or merge
	// landing between probes can make the derived bounds mutually
	// inconsistent (a NotFound-tightened hi excludes a leaf created just
	// after the probe), exhausting the search with no covering leaf. No
	// interleaving can produce a wrong success — a returned bucket is a
	// genuine leaf covering delta, and stale ones lose their commit CAS —
	// so an exhausted search restarts from the full range and re-observes
	// the (always valid) current tree. The restart budget keeps genuine
	// corruption (a bucket missing where the naming invariants require
	// one) a detected error rather than a livelock; a healthy tree with
	// one writer never restarts, preserving the paper's lookup costs.
	for attempt := 0; ; attempt++ {
		for lo <= hi {
			mid := lo + (hi-lo)/2
			x := mu.Prefix(mid)
			name := x.Name()
			b, err := ix.getBucket(ctx, name.Key(), &cost)
			if err == nil && b.Torn() {
				// In-line read-repair: a fetched bucket carrying a pending
				// split/merge intent is completed (or rolled back) before the
				// search interprets it, so a torn tree converges back to the
				// never-crashed structure under ordinary query traffic.
				b, err = ix.repairTorn(ctx, name.Key(), b, &cost)
				// The repair changed tree structure, so bounds derived from
				// probes of the pre-repair tree may exclude the new leaves
				// (e.g. a split's remote child sits one level below an hi set
				// by probing its then-absent key). Restart from the full
				// range; the repaired bucket's own case analysis below is
				// computed against the current tree and stays valid.
				lo, hi = 1, ix.cfg.Depth
			}
			switch {
			case errors.Is(err, dht.ErrNotFound):
				// No leaf is named f_n(x): every prefix of mu in
				// (len(f_n(x)), len(x)] shares that name and is ruled out.
				hi = name.Len()
			case err != nil:
				cost.Steps = cost.Lookups
				return nil, "", cost, err
			case b.Contains(delta):
				cost.Steps = cost.Lookups
				return b, name.Key(), cost, nil
			default:
				// The bucket named f_n(x) does not cover delta, so x is an
				// internal node; the next candidate is the first prefix of
				// mu past x's trailing run (it has a different name).
				next, ok := x.NextName(mu)
				if !ok {
					// mu continues with x's last bit to its full depth D, so
					// no longer candidate exists against the probed tree;
					// either corruption or a racing merge — restart decides.
					lo = hi + 1
					continue
				}
				lo = next.Len()
			}
		}
		if attempt+1 >= lookupRestarts || ctx.Err() != nil {
			break
		}
		lo, hi = 1, ix.cfg.Depth
	}
	cost.Steps = cost.Lookups
	if err := ctx.Err(); err != nil {
		return nil, "", cost, err
	}
	return nil, "", cost, fmt.Errorf("%w: lookup %v found no covering leaf", ErrCorrupt, delta)
}

// lookupRestarts bounds how many times one lookup may re-run its binary
// search after exhausting it against a tree that mutated mid-search.
const lookupRestarts = 8

// Search is the exact-match query of section 5: an LHT lookup that returns
// the record with the given data key, or ErrKeyNotFound.
func (ix *Index) Search(delta float64) (record.Record, Cost, error) {
	return ix.SearchContext(context.Background(), delta)
}

// SearchContext is Search with a caller-supplied context.
func (ix *Index) SearchContext(ctx context.Context, delta float64) (rec record.Record, cost Cost, err error) {
	ctx, done := ix.beginOp(ctx, metrics.OpGet)
	defer func() { done(err) }()
	b, _, cost, err := ix.lookup(ctx, delta)
	if err != nil {
		return record.Record{}, cost, err
	}
	if i := record.FindByKey(b.Records, delta); i >= 0 {
		return b.Records[i], cost, nil
	}
	return record.Record{}, cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
}

// Insert adds a record (replacing any record with the same key). Per
// section 5 it is an LHT lookup followed by one DHT-put toward the
// bucket's name; if the put saturates the bucket, the leaf splits
// (Algorithm 1), which costs one more DHT-lookup to push the remote half
// out. An insertion causes at most one split, avoiding cascades.
func (ix *Index) Insert(rec record.Record) (Cost, error) {
	return ix.InsertContext(context.Background(), rec)
}

// InsertContext is Insert with a caller-supplied context. The
// read-modify-write is optimistic: the write-back is an epoch-guarded
// conditional put, and losing the compare-and-swap to a concurrent writer
// re-runs the whole round (lookup included — the leaf may have split or
// merged under us) until the insert commits or ctx ends.
func (ix *Index) InsertContext(ctx context.Context, rec record.Record) (cost Cost, err error) {
	if err := keyspace.CheckKey(rec.Key); err != nil {
		return Cost{}, err
	}
	ctx, done := ix.beginOp(ctx, metrics.OpInsert)
	defer func() { done(err) }()
	for {
		b, key, lcost, err := ix.lookup(ctx, rec.Key)
		cost.Add(lcost)
		if err != nil {
			return cost, err
		}
		// Mutate a private clone: the substrate may hand concurrent readers
		// the very pointer it stores (the in-process substrates do).
		nb := b.Clone()
		if i := record.FindByKey(nb.Records, rec.Key); i >= 0 {
			nb.Records[i] = rec
		} else {
			nb.Records = append(nb.Records, rec)
		}
		var hotEdge bool
		if ix.cfg.HotSplitRate > 0 {
			now := ix.now()
			hotEdge = nb.RateNow(now) < ix.cfg.HotSplitRate
			nb.bumpRate(now)
			hotEdge = hotEdge && nb.Rate >= ix.cfg.HotSplitRate
		}
		nb.Epoch++
		cost.Lookups++
		cost.Steps++
		err = dht.DoPutIf(ctx, ix.d, key, nb, b.Epoch)
		if errors.Is(err, dht.ErrCASConflict) {
			ix.c.AddWriterRetries(1)
			ix.cacheDrop(b.Label)
			if cerr := ctx.Err(); cerr != nil {
				return cost, cerr
			}
			// The snapshot just lost: the re-read must not ride a
			// coalesced fetch that may predate the winning write, or the
			// retry would re-run against the same losing epoch.
			ctx = dht.WithFreshRead(ctx)
			continue
		}
		if err != nil {
			return cost, fmt.Errorf("lht: write back %q: %w", key, err)
		}
		capacity := nb.Weight() >= ix.cfg.SplitThreshold
		if capacity || ix.hotLeaf(nb, hotEdge) {
			splitCost, err := ix.split(ctx, key, nb, !capacity)
			cost.Add(splitCost)
			ix.c.AddMaintLookups(int64(splitCost.Lookups))
			if err != nil {
				return cost, err
			}
		}
		return cost, nil
	}
}

// rateHot reports whether the leaf's decayed request-rate estimate has
// crossed the configured hot threshold (always false with the plane
// off).
func (ix *Index) rateHot(b *Bucket) bool {
	return ix.cfg.HotSplitRate > 0 && b.RateNow(ix.now()) >= ix.cfg.HotSplitRate
}

// hotLeaf reports whether the load-balancing plane wants this leaf
// split: this commit carried its rate estimate *across* the threshold,
// and it still holds a record to partition (an empty leaf gains nothing
// from halving its interval). Edge-triggering — the crossing commit
// splits, not every commit while hot — matters under contention: the CAS
// serializes commits, so exactly one writer owns each crossing, and a
// herd of writers on one hot leaf launches one Algorithm 1 run instead
// of a stampede of racing splits whose pending intents every concurrent
// reader would then try to repair.
func (ix *Index) hotLeaf(b *Bucket, hotEdge bool) bool {
	return hotEdge && b.Weight() >= 2
}

// split performs Algorithm 1 on the bucket stored under key. One half
// keeps the name f_n(lambda) and stays on its peer (a free local rewrite);
// the other is named lambda itself and is pushed out with a single
// DHT-put (Theorem 2). hot marks a split triggered by the request-rate
// estimate rather than capacity; the mechanism is identical — the same
// intent protocol, the same deterministic partition — only the
// accounting differs (HotSplits), so a rate-triggered split leaves
// exactly the tree a capacity split of the same leaf would.
//
// The rewrite is crash-consistent: a write-ahead intent (Pending) is
// recorded in the full leaf in place before any routed write, and cleared
// only by the final write-back. Every intermediate state is therefore
// detectable from the bucket under key alone, and completeSplit — invoked
// by the next lookup's read-repair or by Scrub — re-runs the remaining
// steps idempotently, converging on exactly the never-crashed tree.
func (ix *Index) split(ctx context.Context, key string, b *Bucket, hot bool) (Cost, error) {
	// Maintenance traffic: the intent write and both halves' writes are
	// split-phase lookups (repairTorn labels its own calls PhaseRepair).
	ctx = metrics.WithPhase(ctx, metrics.PhaseSplit)
	var cost Cost
	lambda := b.Label
	if lambda.Len() >= ix.cfg.Depth {
		// The tree may not outgrow the a-priori depth D; leave the
		// bucket oversized and record the event.
		ix.mu.Lock()
		ix.overflows++
		ix.mu.Unlock()
		return cost, nil
	}

	// Step 1: mark the intent in place (free, local). The marker takes the
	// bucket's next epoch, which fences the split: any concurrent insert or
	// delete still rebased on the pre-split bucket now loses its CAS and
	// re-fetches — and what it re-fetches carries the intent, so it helps
	// complete the split before retrying. Losing the fence ourselves means
	// another writer committed first (possibly its own split); yield and
	// let the structure settle — if the leaf is still over threshold, the
	// next insert re-triggers the split.
	marked := b.Clone()
	marked.Pending = Pending{Kind: PendingSplit}
	marked.Epoch = b.Epoch + 1
	err := dht.DoWriteIf(ctx, ix.d, key, marked, b.Epoch)
	if errors.Is(err, dht.ErrCASConflict) || errors.Is(err, dht.ErrNotFound) {
		return cost, nil
	}
	if err != nil {
		return cost, fmt.Errorf("lht: split intent %q: %w", key, err)
	}

	// Steps 2-3: push the remote half out, write the local half back.
	_, rb, err := ix.completeSplit(ctx, key, marked, &cost, false)
	if err != nil {
		return cost, err
	}

	// Accounting strictly after both writes succeeded: a failed split
	// must not distort the cost metrics or the paper's alpha estimate.
	moved := int64(rb.Weight())
	ix.c.AddSplits(1)
	if hot {
		ix.c.AddHotSplits(1)
	}
	ix.c.AddMovedRecords(moved)
	ix.mu.Lock()
	ix.alphaSum += float64(moved) / float64(ix.cfg.SplitThreshold)
	ix.mu.Unlock()
	return cost, nil
}

// Delete removes the record with the given data key, or returns
// ErrKeyNotFound. It is the dual of Insert: an LHT lookup, a DHT-put of
// the shrunk bucket, and possibly a leaf merge.
func (ix *Index) Delete(delta float64) (Cost, error) {
	return ix.DeleteContext(context.Background(), delta)
}

// DeleteContext is Delete with a caller-supplied context. Like
// InsertContext it is an optimistic read-modify-write: a lost CAS re-runs
// the round from the lookup until the delete commits or ctx ends.
func (ix *Index) DeleteContext(ctx context.Context, delta float64) (cost Cost, err error) {
	if err := keyspace.CheckKey(delta); err != nil {
		return Cost{}, err
	}
	ctx, done := ix.beginOp(ctx, metrics.OpDelete)
	defer func() { done(err) }()
	for {
		b, key, lcost, err := ix.lookup(ctx, delta)
		cost.Add(lcost)
		if err != nil {
			return cost, err
		}
		i := record.FindByKey(b.Records, delta)
		if i < 0 {
			return cost, fmt.Errorf("%w: %v", ErrKeyNotFound, delta)
		}
		nb := b.Clone()
		nb.Records[i] = nb.Records[len(nb.Records)-1]
		nb.Records = nb.Records[:len(nb.Records)-1]
		if ix.cfg.HotSplitRate > 0 {
			nb.bumpRate(ix.now())
		}
		nb.Epoch++
		cost.Lookups++
		cost.Steps++
		err = dht.DoPutIf(ctx, ix.d, key, nb, b.Epoch)
		if errors.Is(err, dht.ErrCASConflict) {
			ix.c.AddWriterRetries(1)
			ix.cacheDrop(b.Label)
			if cerr := ctx.Err(); cerr != nil {
				return cost, cerr
			}
			// See InsertContext: a lost CAS must re-read fresh, not ride
			// a possibly pre-write coalesced fetch.
			ctx = dht.WithFreshRead(ctx)
			continue
		}
		if err != nil {
			return cost, fmt.Errorf("lht: write back %q: %w", key, err)
		}
		// A rate-hot leaf never merges: re-widening the interval a skewed
		// read stream is hammering would undo the load split and thrash.
		if ix.cfg.MergeThreshold > 0 && nb.Label.Len() >= 2 && nb.Weight() < ix.cfg.MergeThreshold && !ix.rateHot(nb) {
			mergeCost, err := ix.merge(ctx, key, nb)
			cost.Add(mergeCost)
			ix.c.AddMaintLookups(int64(mergeCost.Lookups))
			if err != nil {
				return cost, err
			}
		}
		return cost, nil
	}
}

// merge attempts to merge the underweight leaf b with its sibling, the
// dual of Algorithm 1. It succeeds only when the sibling is itself a leaf
// and the merged bucket (records of both plus one label slot) stays below
// MergeThreshold. Per Theorem 2 in reverse, the merged bucket keeps the
// key f_n(parent), which is the key one of the two children already has,
// so one bucket stays in place and the other moves: one leaf's records of
// data movement, as in the split cost model.
//
// The rewrite is crash-consistent and ordered so no intermediate state
// loses records: the merged bucket — carrying both children's records and
// a Pending intent naming the obsolete child — is made durable first, the
// obsolete child is removed second, and the intent is cleared last (a
// free in-place rewrite). A crash in either window leaves the intent in
// the merged bucket, and completeMerge rolls the mutation forward (or
// back, if another client has since written to the obsolete child).
func (ix *Index) merge(ctx context.Context, key string, b *Bucket) (Cost, error) {
	// Maintenance traffic: the sibling fetch and the merge rewrite are
	// merge-phase lookups.
	ctx = metrics.WithPhase(ctx, metrics.PhaseMerge)
	var cost Cost
	parent := b.Label.Parent()
	sibling := b.Label.Sibling()

	// The sibling, if it is a leaf, is stored under its own name.
	sibKey := sibling.Name().Key()
	sb, err := ix.getBucket(ctx, sibKey, &cost)
	cost.Steps++
	if errors.Is(err, dht.ErrNotFound) {
		return cost, nil // sibling subtree deeper than a single leaf
	}
	if err != nil {
		return cost, err
	}
	if sb.Torn() {
		// The sibling is mid-mutation from a crashed writer: repair it
		// and skip this merge round rather than merging a torn bucket.
		_, err := ix.repairTorn(ctx, sibKey, sb, &cost)
		return cost, err
	}
	if sb.Label != sibling {
		return cost, nil // key exists but names a deeper leaf: sibling is internal
	}
	if b.Weight()+sb.Weight()-1 >= ix.cfg.MergeThreshold {
		return cost, nil // merged weight would defeat the purpose
	}
	if ix.rateHot(sb) {
		return cost, nil // sibling is hot: keep its interval narrow
	}

	// Exactly one child keeps the parent's name f_n(parent) (the child
	// extending the parent's trailing bit run); the other child is named
	// by the parent's own label and is the bucket to remove.
	mergedKey := parent.Name().Key()
	removeKey, peerEpoch, moved := sibKey, sb.Epoch, int64(sb.Weight())
	baseEpoch := b.Epoch // epoch stored under mergedKey when we read it
	if key != mergedKey {
		removeKey, peerEpoch, moved = key, b.Epoch, int64(b.Weight())
		baseEpoch = sb.Epoch
	}
	recs := make([]record.Record, 0, len(b.Records)+len(sb.Records))
	recs = append(recs, b.Records...)
	recs = append(recs, sb.Records...)
	merged := &Bucket{
		Label:   parent,
		Records: recs,
		Epoch:   max(b.Epoch, sb.Epoch) + 1,
		Pending: Pending{Kind: PendingMerge, RemoveKey: removeKey, PeerEpoch: peerEpoch},
		// The merged interval serves both children's traffic: sum the
		// rate estimates (both zero with the plane off).
		Rate:   b.Rate + sb.Rate,
		RateAt: max(b.RateAt, sb.RateAt),
	}

	// Step 1: make the merged bucket durable under f_n(parent), intent
	// recorded, guarded by the epoch we read there. A lost CAS means a
	// concurrent writer beat us to that bucket — the merge decision is
	// stale, so yield; a later underweight delete re-triggers it. From
	// here on, no crash can lose records: both children's records exist
	// in the merged bucket.
	if key == mergedKey {
		// b already sits on the peer that keeps the merged bucket: a free
		// in-place rewrite.
		err := dht.DoWriteIf(ctx, ix.d, mergedKey, merged, baseEpoch)
		if errors.Is(err, dht.ErrCASConflict) || errors.Is(err, dht.ErrNotFound) {
			return cost, nil
		}
		if err != nil {
			return cost, fmt.Errorf("lht: merge write %q: %w", mergedKey, err)
		}
	} else {
		// The sibling's peer holds mergedKey: one routed put replaces the
		// sibling's bucket with the merged one.
		cost.Lookups++
		cost.Steps++
		err := dht.DoPutIf(ctx, ix.d, mergedKey, merged, baseEpoch)
		if errors.Is(err, dht.ErrCASConflict) {
			return cost, nil
		}
		if err != nil {
			return cost, fmt.Errorf("lht: merge put %q: %w", mergedKey, err)
		}
	}

	// Step 2: drop the obsolete child, but only at the epoch the intent
	// names. A conflict means another client wrote to the child between
	// our read and now; the intent's epoch guard no longer holds, so hand
	// the torn state to completeMerge, which rolls it back exactly as
	// crash recovery would.
	cost.Lookups++
	cost.Steps++
	err = dht.DoRemoveIf(ctx, ix.d, removeKey, peerEpoch)
	if errors.Is(err, dht.ErrCASConflict) {
		_, rerr := ix.completeMerge(ctx, mergedKey, merged, &cost)
		return cost, rerr
	}
	if err != nil {
		return cost, fmt.Errorf("lht: merge remove %q: %w", removeKey, err)
	}

	// Step 3: clear the intent. The clear keeps the merged epoch (racing
	// repairers write identical bytes, so the non-bump is idempotent) and
	// is itself guarded: if a repairer or writer already advanced the
	// bucket, the intent is gone and this write must not clobber theirs.
	cleared := merged.Clone()
	cleared.Pending = Pending{}
	err = dht.DoWriteIf(ctx, ix.d, mergedKey, cleared, merged.Epoch)
	if err != nil && !errors.Is(err, dht.ErrCASConflict) && !errors.Is(err, dht.ErrNotFound) {
		return cost, fmt.Errorf("lht: merge clear %q: %w", mergedKey, err)
	}

	// Accounting strictly after all steps succeeded.
	ix.c.AddMerges(1)
	ix.c.AddMovedRecords(moved)
	// Both children stop being leaves; the parent takes their place.
	ix.cacheDrop(b.Label)
	ix.cacheDrop(sibling)
	ix.cacheNote(parent)
	return cost, nil
}
