// Package dhttest provides a conformance battery for dht.DHT
// implementations: every substrate in the repository (the local map, the
// Chord ring, the Kademlia network, the TCP cluster client, and any
// future one) must pass the same behavioural contract the index layers
// rely on. Substrate test files call Run with a factory.
package dhttest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"lht/internal/dht"
)

// Options tunes the battery for substrate-specific constraints.
type Options struct {
	// ValueFactory produces storable values; substrates that serialize
	// need registered concrete types. Defaults to plain byte slices.
	ValueFactory func(i int) dht.Value
	// ValueEqual compares a stored value with the factory's i-th value.
	ValueEqual func(v dht.Value, i int) bool
	// Keys is the number of keys bulk tests use (default 200).
	Keys int
	// Concurrent disables the concurrency test when false-unsafe
	// substrates are wrapped for single-threaded use. Defaults to true.
	SkipConcurrency bool
}

func (o Options) withDefaults() Options {
	if o.ValueFactory == nil {
		o.ValueFactory = func(i int) dht.Value { return []byte{byte(i), byte(i >> 8)} }
	}
	if o.ValueEqual == nil {
		o.ValueEqual = func(v dht.Value, i int) bool {
			b, ok := v.([]byte)
			return ok && len(b) == 2 && b[0] == byte(i) && b[1] == byte(i>>8)
		}
	}
	if o.Keys == 0 {
		o.Keys = 200
	}
	return o
}

// Run drives the full conformance battery against fresh substrates from
// the factory.
func Run(t *testing.T, factory func(t *testing.T) dht.DHT, opts Options) {
	t.Helper()
	o := opts.withDefaults()
	ctx := context.Background()

	t.Run("GetMissing", func(t *testing.T) {
		d := factory(t)
		if _, err := d.Get(ctx, "absent"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
		}
	})

	t.Run("PutGetReplace", func(t *testing.T) {
		d := factory(t)
		if err := d.Put(ctx, "k", o.ValueFactory(1)); err != nil {
			t.Fatal(err)
		}
		v, err := d.Get(ctx, "k")
		if err != nil || !o.ValueEqual(v, 1) {
			t.Fatalf("Get = %v, %v", v, err)
		}
		if err := d.Put(ctx, "k", o.ValueFactory(2)); err != nil {
			t.Fatal(err)
		}
		if v, _ := d.Get(ctx, "k"); !o.ValueEqual(v, 2) {
			t.Fatal("Put must replace")
		}
	})

	t.Run("TakeSemantics", func(t *testing.T) {
		d := factory(t)
		if _, err := d.Take(ctx, "k"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("Take(absent) = %v", err)
		}
		if err := d.Put(ctx, "k", o.ValueFactory(3)); err != nil {
			t.Fatal(err)
		}
		v, err := d.Take(ctx, "k")
		if err != nil || !o.ValueEqual(v, 3) {
			t.Fatalf("Take = %v, %v", v, err)
		}
		if _, err := d.Get(ctx, "k"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatal("Take must remove the key")
		}
	})

	t.Run("RemoveIdempotent", func(t *testing.T) {
		d := factory(t)
		if err := d.Put(ctx, "k", o.ValueFactory(4)); err != nil {
			t.Fatal(err)
		}
		if err := d.Remove(ctx, "k"); err != nil {
			t.Fatal(err)
		}
		if err := d.Remove(ctx, "k"); err != nil {
			t.Fatalf("Remove(absent) = %v, must not error", err)
		}
		if _, err := d.Get(ctx, "k"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatal("Remove must delete")
		}
	})

	t.Run("WriteSemantics", func(t *testing.T) {
		d := factory(t)
		if err := d.Write(ctx, "k", o.ValueFactory(5)); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("Write(absent) = %v, want ErrNotFound", err)
		}
		if err := d.Put(ctx, "k", o.ValueFactory(5)); err != nil {
			t.Fatal(err)
		}
		if err := d.Write(ctx, "k", o.ValueFactory(6)); err != nil {
			t.Fatal(err)
		}
		if v, _ := d.Get(ctx, "k"); !o.ValueEqual(v, 6) {
			t.Fatal("Write must update")
		}
	})

	t.Run("ManyKeys", func(t *testing.T) {
		d := factory(t)
		for i := 0; i < o.Keys; i++ {
			if err := d.Put(ctx, fmt.Sprintf("key-%d", i), o.ValueFactory(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < o.Keys; i++ {
			v, err := d.Get(ctx, fmt.Sprintf("key-%d", i))
			if err != nil || !o.ValueEqual(v, i) {
				t.Fatalf("Get(key-%d) = %v, %v", i, v, err)
			}
		}
		// Delete the even keys, the odd ones must survive.
		for i := 0; i < o.Keys; i += 2 {
			if err := d.Remove(ctx, fmt.Sprintf("key-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < o.Keys; i++ {
			_, err := d.Get(ctx, fmt.Sprintf("key-%d", i))
			if i%2 == 0 && !errors.Is(err, dht.ErrNotFound) {
				t.Fatalf("key-%d should be gone, got %v", i, err)
			}
			if i%2 == 1 && err != nil {
				t.Fatalf("key-%d should survive, got %v", i, err)
			}
		}
	})

	t.Run("LabelShapedKeys", func(t *testing.T) {
		// The index layers use '#'-prefixed bit-string keys; make sure
		// nothing in the substrate chokes on them or conflates them.
		d := factory(t)
		keys := []string{"#", "#0", "#00", "#01", "#0110", "#01100000000000000000"}
		for i, k := range keys {
			if err := d.Put(ctx, k, o.ValueFactory(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i, k := range keys {
			v, err := d.Get(ctx, k)
			if err != nil || !o.ValueEqual(v, i) {
				t.Fatalf("Get(%q) = %v, %v", k, v, err)
			}
		}
	})

	t.Run("ContextCanceled", func(t *testing.T) {
		// Every substrate must refuse routed work on an already-cancelled
		// context, without disturbing stored state.
		d := factory(t)
		if err := d.Put(ctx, "k", o.ValueFactory(7)); err != nil {
			t.Fatal(err)
		}
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := d.Get(cctx, "k"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Get(cancelled) = %v, want context.Canceled", err)
		}
		if err := d.Put(cctx, "k2", o.ValueFactory(8)); !errors.Is(err, context.Canceled) {
			t.Fatalf("Put(cancelled) = %v, want context.Canceled", err)
		}
		if _, err := d.Take(cctx, "k"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Take(cancelled) = %v, want context.Canceled", err)
		}
		if err := d.Remove(cctx, "k"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Remove(cancelled) = %v, want context.Canceled", err)
		}
		if err := d.Write(cctx, "k", o.ValueFactory(9)); !errors.Is(err, context.Canceled) {
			t.Fatalf("Write(cancelled) = %v, want context.Canceled", err)
		}
		// Cancellation must be classified as permanent, not transient.
		if _, err := d.Get(cctx, "k"); dht.IsTransient(err) {
			t.Fatalf("cancellation classified transient: %v", err)
		}
		// The stored value must have survived all the refused operations.
		if v, err := d.Get(ctx, "k"); err != nil || !o.ValueEqual(v, 7) {
			t.Fatalf("Get after cancelled ops = %v, %v", v, err)
		}
	})

	t.Run("BatchMatchesPerOp", func(t *testing.T) {
		// Whether the batch plane is native or the per-op fallback, a
		// multi-get must return positionally aligned outcomes identical
		// to individual Gets, present and absent keys mixed freely.
		d := factory(t)
		n := o.Keys / 4
		if n < 8 {
			n = 8
		}
		kvs := make([]dht.KV, 0, n)
		for i := 0; i < n; i++ {
			kvs = append(kvs, dht.KV{Key: fmt.Sprintf("b-%d", i), Val: o.ValueFactory(i)})
		}
		for _, err := range dht.DoPutBatch(ctx, d, kvs) {
			if err != nil {
				t.Fatalf("PutBatch slot: %v", err)
			}
		}
		keys := make([]string, 0, n+n/4+1)
		want := make([]int, 0, cap(keys)) // value index, or -1 for absent
		for i := 0; i < n; i++ {
			keys = append(keys, fmt.Sprintf("b-%d", i))
			want = append(want, i)
			if i%4 == 0 {
				keys = append(keys, fmt.Sprintf("b-absent-%d", i))
				want = append(want, -1)
			}
		}
		vals, errs := dht.DoGetBatch(ctx, d, keys)
		if len(vals) != len(keys) || len(errs) != len(keys) {
			t.Fatalf("GetBatch returned %d/%d slots, want %d", len(vals), len(errs), len(keys))
		}
		for i, k := range keys {
			if want[i] < 0 {
				if !errors.Is(errs[i], dht.ErrNotFound) {
					t.Fatalf("slot %d (%q): err %v, want ErrNotFound", i, k, errs[i])
				}
				continue
			}
			if errs[i] != nil || !o.ValueEqual(vals[i], want[i]) {
				t.Fatalf("slot %d (%q): %v, %v; want value %d", i, k, vals[i], errs[i], want[i])
			}
		}
	})

	t.Run("BatchPutLastWins", func(t *testing.T) {
		// Duplicate keys in one PutBatch must apply in slice order, as a
		// sequence of per-op Puts would.
		d := factory(t)
		kvs := []dht.KV{
			{Key: "dup", Val: o.ValueFactory(1)},
			{Key: "other", Val: o.ValueFactory(2)},
			{Key: "dup", Val: o.ValueFactory(3)},
		}
		for _, err := range dht.DoPutBatch(ctx, d, kvs) {
			if err != nil {
				t.Fatalf("PutBatch slot: %v", err)
			}
		}
		if v, err := d.Get(ctx, "dup"); err != nil || !o.ValueEqual(v, 3) {
			t.Fatalf("Get(dup) = %v, %v; last occurrence must win", v, err)
		}
		if v, err := d.Get(ctx, "other"); err != nil || !o.ValueEqual(v, 2) {
			t.Fatalf("Get(other) = %v, %v", v, err)
		}
	})

	t.Run("BatchEmpty", func(t *testing.T) {
		d := factory(t)
		if vals, errs := dht.DoGetBatch(ctx, d, nil); len(vals) != 0 || len(errs) != 0 {
			t.Fatalf("empty GetBatch = %d/%d slots", len(vals), len(errs))
		}
		if errs := dht.DoPutBatch(ctx, d, nil); len(errs) != 0 {
			t.Fatalf("empty PutBatch = %d slots", len(errs))
		}
	})

	t.Run("BatchCancelled", func(t *testing.T) {
		// A cancelled context fails every slot with the cancellation, and
		// stored state survives untouched.
		d := factory(t)
		if err := d.Put(ctx, "bc", o.ValueFactory(7)); err != nil {
			t.Fatal(err)
		}
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, errs := dht.DoGetBatch(cctx, d, []string{"bc", "bc2"})
		for i, err := range errs {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("GetBatch(cancelled) slot %d = %v, want context.Canceled", i, err)
			}
		}
		perrs := dht.DoPutBatch(cctx, d, []dht.KV{{Key: "bc", Val: o.ValueFactory(8)}})
		for i, err := range perrs {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("PutBatch(cancelled) slot %d = %v, want context.Canceled", i, err)
			}
		}
		if v, err := d.Get(ctx, "bc"); err != nil || !o.ValueEqual(v, 7) {
			t.Fatalf("Get after cancelled batch = %v, %v", v, err)
		}
	})

	if !o.SkipConcurrency {
		t.Run("ConcurrentMixedOps", func(t *testing.T) {
			d := factory(t)
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						key := fmt.Sprintf("c-%d-%d", g, i)
						if err := d.Put(ctx, key, o.ValueFactory(i)); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						if v, err := d.Get(ctx, key); err != nil || !o.ValueEqual(v, i) {
							t.Errorf("Get(%s) = %v, %v", key, v, err)
							return
						}
						if i%3 == 0 {
							if err := d.Remove(ctx, key); err != nil {
								t.Errorf("Remove: %v", err)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
