package hashring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashDeterminismAndSpread(t *testing.T) {
	if HashKey("#0101") != HashKey("#0101") {
		t.Error("HashKey not deterministic")
	}
	if HashKey("a") == HashKey("b") {
		t.Error("distinct keys should almost surely differ")
	}
	if HashKey("x") == HashAddr("x") {
		t.Error("key and addr domains must be separated")
	}
	// Uniformity smoke test: bucket 64k hashes into 16 bins.
	bins := make([]int, 16)
	for i := 0; i < 1<<16; i++ {
		bins[HashKey(fmt.Sprintf("key-%d", i))>>60]++
	}
	for i, n := range bins {
		if n < 3500 || n > 4700 {
			t.Errorf("bin %d has %d of 65536 hashes", i, n)
		}
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b ID
		want    bool
	}{
		{5, 1, 10, true},
		{10, 1, 10, true}, // half-open: includes b
		{1, 1, 10, false}, // excludes a
		{11, 1, 10, false},
		{0, 10, 1, true},  // wrapping arc
		{11, 10, 1, true}, // wrapping arc
		{5, 10, 1, false},
		{7, 7, 7, true}, // a == b spans the whole circle (single-node ring)
		{8, 7, 7, true},
	}
	for _, tc := range cases {
		if got := Between(tc.x, tc.a, tc.b); got != tc.want {
			t.Errorf("Between(%d, %d, %d) = %v", tc.x, tc.a, tc.b, got)
		}
	}
}

func TestStrictBetween(t *testing.T) {
	if StrictBetween(10, 1, 10) {
		t.Error("strict arc must exclude b")
	}
	if !StrictBetween(5, 1, 10) || !StrictBetween(0, 10, 1) {
		t.Error("strict arc membership broken")
	}
	if StrictBetween(7, 7, 7) || !StrictBetween(8, 7, 7) {
		t.Error("degenerate strict arc broken")
	}
}

func TestFingerStartAndAdd(t *testing.T) {
	if FingerStart(0, 0) != 1 || FingerStart(0, 63) != 1<<63 {
		t.Error("FingerStart broken")
	}
	// Wraparound.
	if Add(^ID(0), 2) != 1 {
		t.Errorf("Add wrap = %v", Add(^ID(0), 2))
	}
	if FingerStart(^ID(0), 0) != 0 {
		t.Error("FingerStart wrap broken")
	}
}

func TestDistance(t *testing.T) {
	if Distance(10, 15) != 5 {
		t.Error("Distance forward broken")
	}
	if Distance(15, 10) != ^uint64(0)-4 {
		t.Errorf("Distance wrap = %d", Distance(15, 10))
	}
}

// Property: exactly one of "x in (a,b]" and "x in (b,a]" holds whenever
// a, b, x are distinct - the arcs partition the circle.
func TestQuickArcPartition(t *testing.T) {
	prop := func(x, a, b uint64) bool {
		if x == a || x == b || a == b {
			return true
		}
		return Between(ID(x), ID(a), ID(b)) != Between(ID(x), ID(b), ID(a))
	}
	cfg := &quick.Config{MaxCount: 10000, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
