// Package pht implements the Prefix Hash Tree (Ramabhadran et al., PODC
// 2004; Chawathe et al., SIGCOMM 2005), the baseline the paper compares
// against as the prior state of the art in maintenance efficiency
// (sections 8.2 and 9).
//
// PHT is a binary trie over the same [0, 1) key space: every trie node -
// internal nodes included - is stored in the DHT directly under its own
// label, leaves hold the records, and neighboring leaves are chained with
// B+-tree-style prev/next links. Consequences the paper measures:
//
//   - a leaf split rewrites the leaf as an internal marker in place but
//     must push *both* children to other peers (their labels changed) and
//     patch two neighbor links: theta records moved and 4 DHT-lookups,
//     versus LHT's theta/2 and 1 (equations 1-2);
//   - lookup binary-searches all D prefix lengths (log D probes, versus
//     LHT's log(D/2));
//   - range queries either walk the leaf chain (near-optimal bandwidth,
//     sequential latency) or fan out through the trie from the range's
//     LCA (parallel latency, about twice the bandwidth).
//
// The implementation mirrors internal/lht's structure so experiments
// exercise both through identical harnesses.
package pht

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"lht/internal/bitlabel"
	"lht/internal/keyspace"
	"lht/internal/record"
)

// Node is one trie node as stored in the DHT under its label's key.
type Node struct {
	// Label is the trie node's label; its key in the DHT.
	Label bitlabel.Label
	// Leaf marks leaf nodes; internal nodes are empty markers that exist
	// so the lookup binary search can distinguish "descend" from "too
	// deep".
	Leaf bool
	// Records are the stored records (leaf nodes only).
	Records []record.Record
	// Prev and Next are the B+-tree leaf links (leaf nodes only). The
	// flags distinguish "no neighbor" from the zero label.
	Prev, Next       bitlabel.Label
	HasPrev, HasNext bool
	// Epoch is a per-node version, bumped on every mutation; conditional
	// substrate writes compare against it, exactly as lht.Bucket.Epoch.
	Epoch uint64
}

// DHTEpoch implements dht.Epocher so epoch-guarded conditional writes
// serialize concurrent mutations of one trie node.
func (n *Node) DHTEpoch() uint64 { return n.Epoch }

// Clone returns a deep copy of the node, for mutating without aliasing
// the pointer an in-process substrate may be sharing with readers.
func (n *Node) Clone() *Node {
	out := *n
	if n.Records != nil {
		out.Records = make([]record.Record, len(n.Records))
		copy(out.Records, n.Records)
	}
	return &out
}

// Weight is the node's storage occupancy: records plus one label slot,
// the same accounting as lht.Bucket so the comparison is like for like.
func (n *Node) Weight() int { return len(n.Records) + 1 }

// Interval returns the key interval the node covers.
func (n *Node) Interval() keyspace.Interval { return keyspace.IntervalOf(n.Label) }

// Contains reports whether the node's interval covers delta.
func (n *Node) Contains(delta float64) bool { return n.Interval().Contains(delta) }

// String summarizes the node for logs and test failures.
func (n *Node) String() string {
	kind := "internal"
	if n.Leaf {
		kind = fmt.Sprintf("leaf, %d records", len(n.Records))
	}
	return fmt.Sprintf("pht(%s, %s)", n.Label, kind)
}

// nodeWire is the serialized form of a Node. Epoch is zero-valued on
// nodes written before it existed, which gob omits, so old snapshots
// decode unchanged.
type nodeWire struct {
	Label            bitlabel.Label
	Leaf             bool
	Records          []record.Record
	Prev, Next       bitlabel.Label
	HasPrev, HasNext bool
	Epoch            uint64
}

// EncodeNode serializes a node for byte-store substrates.
func EncodeNode(n *Node) ([]byte, error) {
	var buf bytes.Buffer
	w := nodeWire{
		Label: n.Label, Leaf: n.Leaf, Records: n.Records,
		Prev: n.Prev, Next: n.Next, HasPrev: n.HasPrev, HasNext: n.HasNext,
		Epoch: n.Epoch,
	}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("encode pht node: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeNode is the inverse of EncodeNode.
func DecodeNode(data []byte) (*Node, error) {
	var w nodeWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("decode pht node: %w", err)
	}
	return &Node{
		Label: w.Label, Leaf: w.Leaf, Records: w.Records,
		Prev: w.Prev, Next: w.Next, HasPrev: w.HasPrev, HasNext: w.HasNext,
		Epoch: w.Epoch,
	}, nil
}
