package lht_test

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"lht"
)

// scrapeCounter fetches url and returns the value of the named
// un-labelled counter from the Prometheus text exposition.
func scrapeCounter(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimPrefix(line, name+" "), 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not in exposition from %s", name, url)
	return 0
}

// TestMetricsEndpointMatchesSnapshot runs a workload, scrapes the HTTP
// /metrics endpoint, and requires the scraped lookup totals to equal
// the same index's Snapshot counters — the exported view and the
// programmatic view must never disagree.
func TestMetricsEndpointMatchesSnapshot(t *testing.T) {
	ix, err := lht.New(lht.NewLocalDHT(), lht.WithThresholds(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := ix.Insert(lht.Record{Key: float64(i) / 500}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, _, err := ix.Get(float64(i) / 50); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ix.Range(0.2, 0.4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Min(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(lht.NewMetricsMux(ix.Metrics))
	defer srv.Close()

	s := ix.Metrics()
	if got := scrapeCounter(t, srv.URL+"/metrics", "lht_dht_lookups_total"); got != s.Lookup.Total {
		t.Errorf("scraped lht_dht_lookups_total = %d, Snapshot.Lookup.Total = %d", got, s.Lookup.Total)
	}
	if got := scrapeCounter(t, srv.URL+"/metrics", "lht_splits_total"); got != s.Lookup.Splits {
		t.Errorf("scraped lht_splits_total = %d, Snapshot.Lookup.Splits = %d", got, s.Lookup.Splits)
	}
	if s.Lookup.Total == 0 || s.Lookup.Splits == 0 {
		t.Errorf("workload produced no traffic: %+v", s.Lookup)
	}

	// MetricsHandler serves the same exposition as the mux's /metrics.
	h := httptest.NewServer(lht.MetricsHandler(ix.Metrics))
	defer h.Close()
	if a, b := scrapeCounter(t, srv.URL+"/metrics", "lht_dht_lookups_total"),
		scrapeCounter(t, h.URL, "lht_dht_lookups_total"); a != b {
		t.Errorf("mux /metrics and MetricsHandler disagree: %d vs %d", a, b)
	}
}
