package tcpnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lht/internal/dht"
)

// mconn is one pipelined, multiplexed connection to a node. Any number of
// goroutines issue requests concurrently; a writer goroutine coalesces
// their frames into the socket and a reader goroutine correlates response
// frames back to waiters through a request-id-keyed pending table. A
// cancelled caller abandons its pending slot and walks away — the
// connection (and everyone else's in-flight requests) keeps going, unlike
// the legacy gob path, which could only interrupt a round trip by killing
// the shared connection.
//
// The connection dials lazily and redials after a failure; every dial is
// health-checked with a synchronous ping before the connection is handed
// to the multiplexer, so a half-dead endpoint (listener up, server
// wedged) is caught at reconnect time rather than poisoning the pending
// table.
type mconn struct {
	addr string
	dial ContextDialer // nil = plain net.Dialer

	mu     sync.Mutex
	st     *wireState // nil until dialed; replaced on reconnect
	gate   redialGate // lazy-redial cooldown (breaker-backed when health is on)
	closed bool
	hwm    int // high-water mark of in-flight requests, across generations
}

// wireState is one generation of an mconn's underlying connection: a
// fresh one is built per (re)dial, so a failure sweeps exactly the
// requests that were riding the broken socket.
type wireState struct {
	conn    net.Conn
	sendq   chan *[]byte
	dead    chan struct{} // closed by fail; err is set before the close
	pending map[uint64]*pending
	nextID  uint64
	failed  bool
	err     error
}

// pending is one in-flight request's rendezvous. Exactly one result is
// delivered per registration (by the reader or by fail), so the struct
// and its channel are pooled and reused across requests.
type pending struct{ ch chan result }

// result carries a response frame body (a pooled buffer the waiter must
// recycle) or the connection failure that ended the wait.
type result struct {
	buf *[]byte
	err error
}

var pendingPool = sync.Pool{New: func() any { return &pending{ch: make(chan result, 1)} }}

// wireBufSize sizes the per-connection read and write buffers: large
// enough to coalesce dozens of pipelined frames per syscall.
const wireBufSize = 64 << 10

var errClientClosed = errors.New("tcpnet: client closed")

// connect ensures the connection is dialed and healthy; DialContext uses
// it as the bootstrap liveness probe.
func (m *mconn) connect(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.ensureLocked(ctx)
	return err
}

// ensureLocked returns the live wireState, dialing (with a health-check
// ping) if there is none. Called with m.mu held; the dial happens under
// the lock, which serializes concurrent reconnect attempts exactly like
// the legacy per-connection mutex did.
func (m *mconn) ensureLocked(ctx context.Context) (*wireState, error) {
	if m.closed {
		return nil, errClientClosed
	}
	if m.st != nil {
		return m.st, nil
	}
	if err := m.gate.check(m.addr); err != nil {
		return nil, err
	}
	conn, err := dialWith(ctx, m.dial, m.addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		err = dht.MarkTransient(fmt.Errorf("tcpnet: dial %q: %w", m.addr, err))
		m.gate.failure(err)
		return nil, err
	}
	if err := handshake(ctx, conn); err != nil {
		_ = conn.Close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		err = dht.MarkTransient(fmt.Errorf("tcpnet: handshake %q: %w", m.addr, err))
		m.gate.failure(err)
		return nil, err
	}
	m.gate.success()
	st := &wireState{
		conn:    conn,
		sendq:   make(chan *[]byte, 64),
		dead:    make(chan struct{}),
		pending: make(map[uint64]*pending),
		nextID:  1,
	}
	m.st = st
	go m.writeLoop(st)
	go m.readLoop(st)
	return st, nil
}

// handshakeTimeout bounds the health-check ping when the caller's
// context has no deadline of its own: a wedged or black-holed endpoint
// must fail the probe, never hang it.
const handshakeTimeout = 5 * time.Second

// handshake sends the protocol magic and a health-check ping frame, and
// reads the ping response, all synchronously on the fresh connection
// (nothing else can be using it yet). The context's deadline bounds it
// (capped at handshakeTimeout when absent), and cancelling the context
// closes the socket to unblock the read.
func handshake(ctx context.Context, conn net.Conn) error {
	dl := deadline(ctx)
	if lim := time.Now().Add(handshakeTimeout); dl.IsZero() || dl.After(lim) {
		dl = lim
	}
	_ = conn.SetDeadline(dl)
	defer func() { _ = conn.SetDeadline(time.Time{}) }()
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	frame := newFrame(dht.OpPing)
	finishFrame(*frame, 0)
	msg := append([]byte(wireMagic), *frame...)
	_, err := conn.Write(msg)
	putBuf(frame)
	if err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 256)
	body, err := readFrameBody(br, nil)
	if err != nil {
		return err
	}
	if br.Buffered() != 0 {
		return fmt.Errorf("unexpected bytes after ping response")
	}
	c := cursor{b: body[frameHeaderLen:]}
	status, err := c.u8()
	if err != nil || status != statusOK {
		return fmt.Errorf("ping rejected (status %d, %v)", status, err)
	}
	return nil
}

// fail tears down one connection generation: marks it broken, closes the
// socket, and delivers err to every in-flight request. Idempotent per
// generation; a later request redials a fresh generation.
func (m *mconn) fail(st *wireState, err error) {
	m.mu.Lock()
	if st.failed {
		m.mu.Unlock()
		return
	}
	st.failed = true
	st.err = err
	if m.st == st {
		m.st = nil
	}
	pend := st.pending
	st.pending = nil
	m.mu.Unlock()

	_ = st.conn.Close()
	close(st.dead)
	for _, p := range pend {
		p.ch <- result{err: err}
	}
	// Recycle frames that were queued but never written.
	for {
		select {
		case b := <-st.sendq:
			putBuf(b)
		default:
			return
		}
	}
}

// close shuts the connection down for good; subsequent calls fail fast.
func (m *mconn) close() {
	m.mu.Lock()
	m.closed = true
	st := m.st
	m.mu.Unlock()
	if st != nil {
		m.fail(st, errClientClosed)
	}
}

// writeLoop drains the send queue into the socket, coalescing every frame
// already queued into one buffered flush (many pipelined requests per
// syscall).
func (m *mconn) writeLoop(st *wireState) {
	bw := bufio.NewWriterSize(st.conn, wireBufSize)
	for {
		select {
		case <-st.dead:
			return
		case buf := <-st.sendq:
			for {
				_, err := bw.Write(*buf)
				putBuf(buf)
				if err != nil {
					m.fail(st, m.transport(err))
					return
				}
				select {
				case buf = <-st.sendq:
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				m.fail(st, m.transport(err))
				return
			}
		}
	}
}

// readLoop reads response frames and hands each to its waiter by request
// id. Responses whose waiter has abandoned the slot (cancellation) are
// dropped on the floor — that is the entire cost of a cancelled request.
func (m *mconn) readLoop(st *wireState) {
	br := bufio.NewReaderSize(st.conn, wireBufSize)
	for {
		bufp := getBuf()
		body, err := readFrameBody(br, *bufp)
		*bufp = body // keep the (possibly re-grown) backing array pooled
		if err != nil {
			putBuf(bufp)
			m.fail(st, m.transport(err))
			return
		}
		id := binary.BigEndian.Uint64(body[:8])
		m.mu.Lock()
		p, ok := st.pending[id]
		if ok {
			delete(st.pending, id)
		}
		m.mu.Unlock()
		if !ok {
			putBuf(bufp)
			continue
		}
		p.ch <- result{buf: bufp}
	}
}

// transport wraps a connection-level failure as a transient fault.
func (m *mconn) transport(err error) error {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return errClientClosed
	}
	return dht.MarkTransient(fmt.Errorf("tcpnet: node %q unreachable: %w", m.addr, err))
}

// call performs one framed round trip: build encodes the request payload
// (called once per attempt, appending to a pooled frame). A transport
// failure is retried once on a fresh connection, mirroring the legacy
// path's reconnect-within-the-call behaviour; context cancellation and
// server-level responses are returned as-is. The returned buffer is the
// response frame body (id+op+payload) and must be recycled with putBuf.
func (m *mconn) call(ctx context.Context, op dht.OpKind, build func([]byte) ([]byte, error)) (*[]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		body, err, retry := m.attempt(ctx, op, build)
		if err == nil {
			return body, nil
		}
		if !retry || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// attempt runs one send/receive cycle. retry reports whether the failure
// was transport-level on an established connection (worth one redial).
func (m *mconn) attempt(ctx context.Context, op dht.OpKind, build func([]byte) ([]byte, error)) (_ *[]byte, err error, retry bool) {
	m.mu.Lock()
	st, err := m.ensureLocked(ctx)
	if err != nil {
		m.mu.Unlock()
		return nil, err, false
	}
	id := st.nextID
	st.nextID++
	p := pendingPool.Get().(*pending)
	st.pending[id] = p
	if n := len(st.pending); n > m.hwm {
		m.hwm = n
	}
	m.mu.Unlock()

	bufp := newFrame(op)
	built, err := build(*bufp)
	if err != nil {
		// Encoding failed before anything hit the wire: unregister and
		// surface the caller's error (not a transport fault).
		putBuf(bufp)
		m.forget(st, id, p)
		return nil, err, false
	}
	*bufp = built
	finishFrame(*bufp, id)

	select {
	case st.sendq <- bufp:
	case <-st.dead:
		putBuf(bufp)
		m.forget(st, id, p)
		return nil, st.err, true
	case <-ctx.Done():
		putBuf(bufp)
		m.forget(st, id, p)
		return nil, ctx.Err(), false
	}

	select {
	case res := <-p.ch:
		pendingPool.Put(p)
		if res.err != nil {
			return nil, res.err, !errors.Is(res.err, errClientClosed)
		}
		return res.buf, nil, false
	case <-ctx.Done():
		m.forget(st, id, p)
		return nil, ctx.Err(), false
	}
}

// forget abandons a pending slot. If the reader (or fail) got there
// first, the delivered result is drained and recycled so the pooled
// pending is clean for its next user.
func (m *mconn) forget(st *wireState, id uint64, p *pending) {
	m.mu.Lock()
	_, mine := st.pending[id]
	if mine {
		delete(st.pending, id)
	}
	m.mu.Unlock()
	if !mine {
		res := <-p.ch
		if res.buf != nil {
			putBuf(res.buf)
		}
	}
	pendingPool.Put(p)
}

// maxInFlight reports the connection's in-flight high-water mark.
func (m *mconn) maxInFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hwm
}
