package lht

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/record"
)

func mustLabel(t *testing.T, s string) bitlabel.Label {
	t.Helper()
	l, err := bitlabel.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// oracle is a trivially correct in-memory reference: a map of records.
type oracle struct {
	data map[float64][]byte
}

func newOracle() *oracle { return &oracle{data: make(map[float64][]byte)} }

func (o *oracle) insert(r record.Record) { o.data[r.Key] = r.Value }
func (o *oracle) remove(k float64) bool  { _, ok := o.data[k]; delete(o.data, k); return ok }
func (o *oracle) get(k float64) (rec record.Record, ok bool) {
	v, ok := o.data[k]
	return record.Record{Key: k, Value: v}, ok
}

func (o *oracle) keysIn(lo, hi float64) []float64 {
	var out []float64
	for k := range o.data {
		if k >= lo && k < hi {
			out = append(out, k)
		}
	}
	sort.Float64s(out)
	return out
}

func (o *oracle) min() (float64, bool) {
	best, ok := math.Inf(1), false
	for k := range o.data {
		ok = true
		if k < best {
			best = k
		}
	}
	return best, ok
}

func (o *oracle) max() (float64, bool) {
	best, ok := math.Inf(-1), false
	for k := range o.data {
		ok = true
		if k > best {
			best = k
		}
	}
	return best, ok
}

// drawKey returns a key from one of several distributions so the oracle
// exercise covers uniform, clustered, and discrete-duplicate-prone data.
func drawKey(rng *rand.Rand, dist int) float64 {
	switch dist {
	case 0: // uniform
		return rng.Float64()
	case 1: // gaussian around 0.5 (clipped into [0,1))
		for {
			k := 0.5 + rng.NormFloat64()/6
			if k >= 0 && k < 1 {
				return k
			}
		}
	default: // coarse grid: many exact duplicates and dyadic boundaries
		return float64(rng.Intn(64)) / 64
	}
}

// TestOracleRandomOps drives the index with a long random mix of
// operations and checks every result against the reference map, plus the
// structural invariants along the way.
func TestOracleRandomOps(t *testing.T) {
	configs := []Config{
		{SplitThreshold: 4, MergeThreshold: 0, Depth: 20},
		{SplitThreshold: 8, MergeThreshold: 6, Depth: 20},
		{SplitThreshold: 16, MergeThreshold: 8, Depth: 16},
		{SplitThreshold: 100, MergeThreshold: 50, Depth: 20},
	}
	for ci, cfg := range configs {
		for dist := 0; dist < 3; dist++ {
			cfg, ci, dist := cfg, ci, dist
			t.Run(fmt.Sprintf("cfg%d/dist%d", ci, dist), func(t *testing.T) {
				t.Parallel()
				runOracle(t, cfg, dist, 4000, rand.New(rand.NewSource(int64(ci*10+dist))))
			})
		}
	}
}

func runOracle(t *testing.T, cfg Config, dist, steps int, rng *rand.Rand) {
	ix, err := New(dht.NewLocal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle()
	var live []float64 // keys known to be present (with duplicates possible)

	for i := 0; i < steps; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			k := drawKey(rng, dist)
			val := []byte(fmt.Sprintf("v%d", i))
			if _, err := ix.Insert(record.Record{Key: k, Value: val}); err != nil {
				t.Fatalf("step %d: Insert(%v): %v", i, k, err)
			}
			o.insert(record.Record{Key: k, Value: val})
			live = append(live, k)

		case op < 7: // delete (a known key half the time, a random one otherwise)
			var k float64
			if len(live) > 0 && rng.Intn(2) == 0 {
				k = live[rng.Intn(len(live))]
			} else {
				k = drawKey(rng, dist)
			}
			_, err := ix.Delete(k)
			wantOK := o.remove(k)
			if wantOK && err != nil {
				t.Fatalf("step %d: Delete(%v) = %v, oracle had it", i, k, err)
			}
			if !wantOK && err == nil {
				t.Fatalf("step %d: Delete(%v) succeeded, oracle did not have it", i, k)
			}

		case op < 9: // exact-match search
			var k float64
			if len(live) > 0 && rng.Intn(2) == 0 {
				k = live[rng.Intn(len(live))]
			} else {
				k = drawKey(rng, dist)
			}
			rec, _, err := ix.Search(k)
			want, wantOK := o.get(k)
			if wantOK {
				if err != nil {
					t.Fatalf("step %d: Search(%v) = %v, oracle has %v", i, k, err, want)
				}
				if string(rec.Value) != string(want.Value) {
					t.Fatalf("step %d: Search(%v) = %q, want %q", i, k, rec.Value, want.Value)
				}
			} else if err == nil {
				t.Fatalf("step %d: Search(%v) found a phantom record", i, k)
			}

		default: // range query
			lo := rng.Float64()
			hi := lo + rng.Float64()*(1-lo)
			if hi <= lo {
				hi = math.Nextafter(lo, 2)
				if hi > 1 {
					continue
				}
			}
			got, cost, err := ix.Range(lo, hi)
			if err != nil {
				t.Fatalf("step %d: Range(%v, %v): %v", i, lo, hi, err)
			}
			checkRange(t, i, got, o.keysIn(lo, hi), lo, hi, cost)
		}

		if i%1000 == 999 {
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}

	// Final full validation: every oracle key searchable, min/max agree,
	// full-space range returns everything.
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range o.data {
		rec, _, err := ix.Search(k)
		if err != nil || string(rec.Value) != string(v) {
			t.Fatalf("final Search(%v) = %v, %v; want %q", k, rec, err, v)
		}
	}
	if wantMin, ok := o.min(); ok {
		if r, _, err := ix.Min(); err != nil || r.Key != wantMin {
			t.Fatalf("Min = %v, %v; want %v", r, err, wantMin)
		}
		wantMax, _ := o.max()
		if r, _, err := ix.Max(); err != nil || r.Key != wantMax {
			t.Fatalf("Max = %v, %v; want %v", r, err, wantMax)
		}
	}
	got, cost, err := ix.Range(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkRange(t, -1, got, o.keysIn(0, 1), 0, 1, cost)
	if n, err := ix.Count(); err != nil || n != len(o.data) {
		t.Fatalf("Count = %d, %v; want %d", n, err, len(o.data))
	}
}

func checkRange(t *testing.T, step int, got []record.Record, wantKeys []float64, lo, hi float64, cost Cost) {
	t.Helper()
	gotKeys := make([]float64, len(got))
	for i, r := range got {
		gotKeys[i] = r.Key
	}
	sort.Float64s(gotKeys)
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("step %d: Range[%v,%v) returned %d records, want %d", step, lo, hi, len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("step %d: Range[%v,%v) key %d = %v, want %v", step, lo, hi, i, gotKeys[i], wantKeys[i])
		}
	}
	// No duplicates.
	for i := 1; i < len(gotKeys); i++ {
		if gotKeys[i] == gotKeys[i-1] {
			t.Fatalf("step %d: Range[%v,%v) returned duplicate key %v", step, lo, hi, gotKeys[i])
		}
	}
	if cost.Steps > cost.Lookups {
		t.Fatalf("step %d: Steps %d > Lookups %d", step, cost.Steps, cost.Lookups)
	}
}

// TestRangeCostNearOptimal checks section 6.3: a range query touching B
// leaf buckets costs at most about B+3 DHT-lookups (we allow B+4: our
// generalized simple case may pay one extra boundary fallback when the
// entry bucket covers neither range bound).
func TestRangeCostNearOptimal(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	leaves, err := ix.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		lo := rng.Float64() * 0.9
		hi := lo + rng.Float64()*(1-lo)
		if hi <= lo {
			continue
		}
		_, cost, err := ix.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		// Count the result buckets B by the leaves overlapping the range.
		b := 0
		for _, leaf := range leaves {
			iv := leaf.Interval()
			if iv.Lo < hi && lo < iv.Hi {
				b++
			}
		}
		if cost.Lookups > b+4 {
			t.Errorf("Range[%v,%v): %d lookups for B=%d buckets (> B+4)", lo, hi, cost.Lookups, b)
		}
		if cost.Steps > cost.Lookups {
			t.Errorf("Steps %d > Lookups %d", cost.Steps, cost.Lookups)
		}
	}
}

// TestRangeLatencyBeatsSequential checks that the forwarding DAG is
// genuinely parallel: for wide ranges over many buckets, the step depth
// must be well below the bucket count.
func TestRangeLatencyBeatsSequential(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 20000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	_, cost, err := ix.Range(0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Lookups < 100 {
		t.Fatalf("expected a wide query, got %d lookups", cost.Lookups)
	}
	if cost.Steps*4 > cost.Lookups {
		t.Errorf("Steps = %d vs Lookups = %d; forwarding barely parallel", cost.Steps, cost.Lookups)
	}
}

func TestRangeRejectsBadBounds(t *testing.T) {
	ix, err := New(dht.NewLocal(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := [][2]float64{{0.5, 0.5}, {0.6, 0.5}, {-0.1, 0.5}, {0.5, 1.1}, {1.0, 1.0}}
	for _, b := range bad {
		if _, _, err := ix.Range(b[0], b[1]); err == nil {
			t.Errorf("Range(%v, %v) should fail", b[0], b[1])
		}
	}
}

// TestRangeOverSerializingDHT runs the oracle mix over a DHT that
// round-trips every value through the gob codec, proving the engine never
// depends on pointer sharing with the store (as the networked substrates
// cannot provide it).
func TestRangeOverSerializingDHT(t *testing.T) {
	cfg := Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20}
	d := newCodecDHT()
	ix, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 1500; i++ {
		k := drawKey(rng, i%3)
		if rng.Intn(4) == 0 {
			_, err := ix.Delete(k)
			wantOK := o.remove(k)
			if wantOK != (err == nil) {
				t.Fatalf("Delete(%v) = %v, oracle %v", k, err, wantOK)
			}
			continue
		}
		val := []byte(fmt.Sprintf("v%d", i))
		if _, err := ix.Insert(record.Record{Key: k, Value: val}); err != nil {
			t.Fatal(err)
		}
		o.insert(record.Record{Key: k, Value: val})
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, cost, err := ix.Range(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkRange(t, -2, got, o.keysIn(0, 1), 0, 1, cost)
}

// codecDHT is a Local DHT that stores buckets serialized, decoding on
// every Get/Take, so returned values never alias stored ones.
type codecDHT struct {
	inner *dht.Local
}

func newCodecDHT() *codecDHT { return &codecDHT{inner: dht.NewLocal()} }

func (c *codecDHT) encode(v dht.Value) dht.Value {
	b, ok := v.(*Bucket)
	if !ok {
		return v
	}
	data, err := EncodeBucket(b)
	if err != nil {
		panic(err)
	}
	return data
}

func (c *codecDHT) decode(v dht.Value, err error) (dht.Value, error) {
	if err != nil {
		return nil, err
	}
	data, ok := v.([]byte)
	if !ok {
		return v, nil
	}
	b, err := DecodeBucket(data)
	if err != nil {
		return nil, err
	}
	return b, nil
}

func (c *codecDHT) Get(ctx context.Context, key string) (dht.Value, error) {
	return c.decode(c.inner.Get(ctx, key))
}
func (c *codecDHT) Take(ctx context.Context, key string) (dht.Value, error) {
	return c.decode(c.inner.Take(ctx, key))
}
func (c *codecDHT) Put(ctx context.Context, key string, v dht.Value) error {
	return c.inner.Put(ctx, key, c.encode(v))
}
func (c *codecDHT) Write(ctx context.Context, key string, v dht.Value) error {
	return c.inner.Write(ctx, key, c.encode(v))
}
func (c *codecDHT) Remove(ctx context.Context, key string) error { return c.inner.Remove(ctx, key) }
