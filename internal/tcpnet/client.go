package tcpnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"lht/internal/dht"
	"lht/internal/hashring"
)

// Client implements dht.DHT over a static set of tcpnet servers: keys are
// mapped to nodes with consistent hashing on the same 64-bit circle the
// Chord substrate uses, so each node owns the arc ending at its hashed
// address. It is safe for concurrent use; each node connection carries
// one request at a time.
type Client struct {
	nodes []*nodeConn // sorted by ring ID
}

var _ dht.DHT = (*Client)(nil)

// nodeConn is one node's connection state with lazy (re)dialing.
type nodeConn struct {
	id   hashring.ID
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial builds a client for the given node addresses and verifies each
// node answers a ping.
func Dial(addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("tcpnet: no node addresses")
	}
	c := &Client{}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if seen[a] {
			return nil, fmt.Errorf("tcpnet: duplicate node %q", a)
		}
		seen[a] = true
		c.nodes = append(c.nodes, &nodeConn{id: hashring.HashAddr(a), addr: a})
	}
	sort.Slice(c.nodes, func(i, j int) bool { return c.nodes[i].id < c.nodes[j].id })
	for _, n := range c.nodes {
		if _, err := n.roundTrip(request{Op: opPing}); err != nil {
			return nil, fmt.Errorf("tcpnet: ping %q: %w", n.addr, err)
		}
	}
	return c, nil
}

// Close tears down all connections.
func (c *Client) Close() error {
	var first error
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.conn != nil {
			if err := n.conn.Close(); err != nil && first == nil {
				first = err
			}
			n.conn = nil
		}
		n.mu.Unlock()
	}
	return first
}

// owner returns the node responsible for key: the first node clockwise
// from hash(key).
func (c *Client) owner(key string) *nodeConn {
	h := hashring.HashKey(key)
	i := sort.Search(len(c.nodes), func(i int) bool { return c.nodes[i].id >= h })
	if i == len(c.nodes) {
		i = 0
	}
	return c.nodes[i]
}

func (n *nodeConn) roundTrip(req request) (response, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// One reconnect attempt per call: a broken connection surfaces as a
	// decode/encode error on the first try.
	for attempt := 0; attempt < 2; attempt++ {
		if n.conn == nil {
			conn, err := net.Dial("tcp", n.addr)
			if err != nil {
				return response{}, err
			}
			n.conn = conn
			n.enc = gob.NewEncoder(conn)
			n.dec = gob.NewDecoder(conn)
		}
		var resp response
		if err := n.enc.Encode(req); err == nil {
			if err := n.dec.Decode(&resp); err == nil {
				return resp, nil
			}
		}
		_ = n.conn.Close()
		n.conn = nil
	}
	return response{}, fmt.Errorf("tcpnet: node %q unreachable", n.addr)
}

func (c *Client) do(key string, req request) (response, error) {
	resp, err := c.owner(key).roundTrip(req)
	if err != nil {
		return response{}, err
	}
	switch resp.Err {
	case "":
		return resp, nil
	case errNotFound:
		return response{}, dht.ErrNotFound
	default:
		return response{}, fmt.Errorf("tcpnet: server error: %s", resp.Err)
	}
}

// Get implements dht.DHT.
func (c *Client) Get(key string) (dht.Value, error) {
	resp, err := c.do(key, request{Op: opGet, Key: key})
	if err != nil {
		return nil, err
	}
	return decodeValue(resp.Val)
}

// Put implements dht.DHT.
func (c *Client) Put(key string, v dht.Value) error {
	data, err := encodeValue(v)
	if err != nil {
		return err
	}
	_, err = c.do(key, request{Op: opPut, Key: key, Val: data})
	return err
}

// Take implements dht.DHT.
func (c *Client) Take(key string) (dht.Value, error) {
	resp, err := c.do(key, request{Op: opTake, Key: key})
	if err != nil {
		return nil, err
	}
	return decodeValue(resp.Val)
}

// Remove implements dht.DHT.
func (c *Client) Remove(key string) error {
	_, err := c.do(key, request{Op: opRemove, Key: key})
	return err
}

// Write implements dht.DHT: the owning node rewrites the value in place.
func (c *Client) Write(key string, v dht.Value) error {
	data, err := encodeValue(v)
	if err != nil {
		return err
	}
	_, err = c.do(key, request{Op: opWrite, Key: key, Val: data})
	return err
}

// NodeAddrs returns the member addresses in ring order.
func (c *Client) NodeAddrs() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.addr
	}
	return out
}
