package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	base := []string{"-trials", "1", "-queries", "20", "-minexp", "8", "-maxexp", "10"}
	if err := run(context.Background(), append(base, args...), &out); err != nil {
		t.Fatalf("run(context.Background(), %v): %v", args, err)
	}
	return out.String()
}

func TestRunSingleExperiment(t *testing.T) {
	out := runBench(t, "-experiments", "thm3")
	for _, want := range []string{"Thm 3", "min query", "max query", "2^8", "2^10"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	out := runBench(t, "-experiments", "all")
	for _, want := range []string{"Fig 6a", "Fig 6b", "Fig 7a", "Fig 7b", "Fig 8a", "Fig 8b",
		"Fig 9a", "Fig 9b", "Fig 10a", "Fig 10b", "Eq 3", "Thm 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCacheAblation(t *testing.T) {
	out := runBench(t, "-experiments", "a4")
	for _, want := range []string{"Ablation A4", "cached lookups/query", "uncached lookups/query", "cache hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	out := runBench(t, "-experiments", "thm3", "-csv")
	if !strings.Contains(out, `x,"min query","max query"`) {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "256,1,1") {
		t.Errorf("CSV row missing:\n%s", out)
	}
}

// The JSON report carries per-operation-class latency percentiles and
// run-level counters under the lht-bench/2 schema.
func TestRunJSONLatencySchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	out := runBench(t, "-experiments", "a1", "-json-out", path)
	if !strings.Contains(out, "latency percentiles") {
		t.Errorf("text output missing latency table:\n%s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	var report struct {
		Schema   string `json:"schema"`
		Counters *struct {
			Lookups int64 `json:"lookups"`
		} `json:"counters"`
		Results []struct {
			Latency []struct {
				Op    string  `json:"op"`
				Count int64   `json:"count"`
				P50Us float64 `json:"p50_us"`
				P95Us float64 `json:"p95_us"`
				P99Us float64 `json:"p99_us"`
			} `json:"latency"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if report.Schema != "lht-bench/2" {
		t.Errorf("schema = %q, want lht-bench/2", report.Schema)
	}
	if report.Counters == nil || report.Counters.Lookups == 0 {
		t.Errorf("run-level counters missing or empty: %+v", report.Counters)
	}
	var ops []string
	for _, res := range report.Results {
		for _, l := range res.Latency {
			ops = append(ops, l.Op)
			if l.Count == 0 {
				t.Errorf("op %q: zero count in latency block", l.Op)
			}
			if l.P50Us <= 0 || l.P95Us < l.P50Us || l.P99Us < l.P95Us {
				t.Errorf("op %q: non-monotone percentiles p50=%g p95=%g p99=%g",
					l.Op, l.P50Us, l.P95Us, l.P99Us)
			}
		}
	}
	if len(ops) == 0 {
		t.Error("no latency blocks in report")
	}
	for _, want := range []string{"get", "insert"} {
		if !slices.Contains(ops, want) {
			t.Errorf("latency blocks %v missing op %q", ops, want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-experiments", "nope"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run(context.Background(), []string{"-experiments", ""}, &out); err == nil {
		t.Error("empty selection should fail")
	}
	if err := run(context.Background(), []string{"-minexp", "12", "-maxexp", "8"}, &out); err == nil {
		t.Error("inverted size range should fail")
	}
	if err := run(context.Background(), []string{"-badflag"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}
