package pht

import (
	"bytes"
	"math/rand"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

// TestRangeParallelBatchedMatchesPerOp: the breadth-first descent must
// return the same records at the same Lookups/Steps whether each level's
// frontier goes out as one multi-get or as individual gets — only round
// trips may differ.
func TestRangeParallelBatchedMatchesPerOp(t *testing.T) {
	build := func(d dht.DHT) *Index {
		ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(91))
		for i := 0; i < 500; i++ {
			if _, err := ix.Insert(record.Record{Key: rng.Float64(), Value: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	batched := build(dht.NewLocal())
	perOp := build(dht.WithoutBatch(dht.NewLocal()))

	for _, r := range [][2]float64{{0, 1}, {0.2, 0.6}, {0.49, 0.51}, {0, 0.0001}, {0.999, 1}} {
		bres, bc, err := batched.RangeParallel(r[0], r[1])
		if err != nil {
			t.Fatalf("batched RangeParallel%v: %v", r, err)
		}
		pres, pc, err := perOp.RangeParallel(r[0], r[1])
		if err != nil {
			t.Fatalf("per-op RangeParallel%v: %v", r, err)
		}
		if bc != pc {
			t.Errorf("RangeParallel%v cost: batched %+v, per-op %+v", r, bc, pc)
		}
		if len(bres) != len(pres) {
			t.Fatalf("RangeParallel%v: %d vs %d records", r, len(bres), len(pres))
		}
		for i := range bres {
			if bres[i].Key != pres[i].Key || !bytes.Equal(bres[i].Value, pres[i].Value) {
				t.Fatalf("RangeParallel%v record %d differs", r, i)
			}
		}
		// Cross-check against the chain walk, which is order-stable.
		sres, _, err := batched.RangeSequential(r[0], r[1])
		if err != nil {
			t.Fatalf("RangeSequential%v: %v", r, err)
		}
		if len(sres) != len(bres) {
			t.Fatalf("RangeParallel%v: %d records, sequential found %d", r, len(bres), len(sres))
		}
	}
}
