package bench

import (
	"context"
	"fmt"
	"math/rand"

	"lht/internal/chord"
	"lht/internal/lht"
	"lht/internal/workload"
)

// tearSplits injects torn split intents into the stored tree: every
// stride-th leaf below the depth bound is rewritten with an uncleared
// PendingSplit marker, exactly the state a writer crashing between its
// intent write and the remote put leaves behind (the tightest of the two
// crash windows — nothing but the marker distinguishes the bucket from a
// healthy one). Returns how many tears were planted.
func tearSplits(ctx context.Context, ring *chord.Ring, ix *lht.Index, depth, stride int) (int, error) {
	leaves, err := ix.Leaves()
	if err != nil {
		return 0, err
	}
	torn := 0
	for i, b := range leaves {
		if i%stride != 0 || b.Label.Len() >= depth {
			continue
		}
		b.Pending = lht.Pending{Kind: lht.PendingSplit}
		if err := ring.Write(ctx, b.Label.Name().Key(), b); err != nil {
			return torn, fmt.Errorf("bench: tear leaf %s: %w", b.Label, err)
		}
		torn++
	}
	return torn, nil
}

// RunChurnAblation is ablation A7: query success and recovery cost under
// the combined failure model — non-graceful Chord churn (crashed nodes
// strand their shards; only substrate replication covers them) plus torn
// structural mutations from crashed writers. An index is built on a
// healthy replicated ring, torn split intents are planted in a fraction
// of its leaves, a fraction of the nodes is then removed abruptly, and a
// fresh client runs the standard 4:1 exact/range query mix. Variants
// cross substrate replication (1 vs 3) with running a Scrub pass before
// the queries (off = tears are only repaired in-line as lookups touch
// them). The companion result prices the recovery machinery: DHT-lookups
// spent on scrubbing plus in-line repair, per query.
//
// The headline the acceptance pins: with Replicas 3 and a scrub, query
// success holds at 100% under 5% churn — the index's own recovery plus
// the substrate's replication absorb both failure classes; with Replicas
// 1 the stranded shards are unrecoverable and success degrades with the
// churn fraction no matter what the index layer does.
func RunChurnAblation(o Options, dist workload.Dist, nodes, size int, churns []float64) (Result, Result, error) {
	o = o.WithDefaults()
	ctx := context.Background()
	success := Result{
		Name:   "A7",
		Title:  fmt.Sprintf("Query success under non-graceful churn + torn mutations (%d nodes, %d records)", nodes, size),
		XLabel: "churned nodes (%)",
		YLabel: "query success (%)",
	}
	cost := Result{
		Name:   "A7b",
		Title:  "Recovery cost (scrub + in-line repair)",
		XLabel: "churned nodes (%)",
		YLabel: "recovery DHT-lookups per query",
	}

	xs := make([]float64, len(churns))
	for i, c := range churns {
		xs[i] = c * 100
	}

	variants := []struct {
		name     string
		replicas int
		scrub    bool
	}{
		{"replicas 1, no scrub", 1, false},
		{"replicas 1, scrub", 1, true},
		{"replicas 3, no scrub", 3, false},
		{"replicas 3, scrub", 3, true},
	}

	ysSuccess := make([][][]float64, len(variants))
	ysCost := make([][][]float64, len(variants))
	for vi := range variants {
		ysSuccess[vi] = make([][]float64, o.Trials)
		ysCost[vi] = make([][]float64, o.Trials)
	}

	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(size)
		for vi, v := range variants {
			row := make([]float64, 0, len(churns))
			costRow := make([]float64, 0, len(churns))
			for ci, churn := range churns {
				ring, err := chord.NewRing(nodes, chord.Config{
					Seed: o.Seed + int64(t), Replicas: v.replicas,
				})
				if err != nil {
					return success, cost, err
				}
				builder, err := lht.New(ring, lht.Config{SplitThreshold: o.Theta, Depth: o.Depth, Aggregate: o.Agg})
				if err != nil {
					return success, cost, err
				}
				for _, r := range recs {
					if _, err := builder.Insert(r); err != nil {
						return success, cost, fmt.Errorf("bench: healthy build failed: %w", err)
					}
				}
				if _, err := tearSplits(ctx, ring, builder, o.Depth, 4); err != nil {
					return success, cost, err
				}

				// Non-graceful churn: crash churn*nodes peers, then let the
				// ring heal its routing (the stranded shards stay stranded;
				// only replication covers them).
				rng := rand.New(rand.NewSource(o.Seed + int64(t*1000+ci)))
				addrs := ring.NodeAddrs()
				rng.Shuffle(len(addrs), func(a, b int) { addrs[a], addrs[b] = addrs[b], addrs[a] })
				for _, addr := range addrs[:int(churn*float64(nodes))] {
					if err := ring.RemoveNode(addr, false); err != nil {
						return success, cost, err
					}
				}
				ring.Stabilize(4)

				// A fresh client plays the post-crash world: no leaf cache,
				// no memory of the pre-churn tree.
				cl, err := lht.New(ring, lht.Config{SplitThreshold: o.Theta, Depth: o.Depth, Aggregate: o.Agg})
				if err != nil {
					return success, cost, err
				}
				before := cl.Metrics()
				if v.scrub {
					// A failed scrub (walk blocked by a stranded leaf) is an
					// outcome of the experiment, not an error of the harness:
					// the queries below measure what it could not fix.
					_, _ = cl.Scrub(ctx)
				}
				qrng := rand.New(rand.NewSource(o.Seed + int64(t)))
				ok := 0
				for q := 0; q < o.Queries; q++ {
					var err error
					if q%5 == 4 {
						lo, hi := gen.RangeQuery(0.01)
						_, _, err = cl.Range(lo, hi)
					} else {
						k := recs[qrng.Intn(len(recs))].Key
						_, _, err = cl.Search(k)
					}
					if err == nil {
						ok++
					}
				}
				delta := cl.Metrics().Sub(before).Flat()
				row = append(row, 100*float64(ok)/float64(o.Queries))
				costRow = append(costRow,
					float64(delta.ScrubLookups+delta.MaintLookups)/float64(o.Queries))
			}
			ysSuccess[vi][t] = row
			ysCost[vi][t] = costRow
		}
	}

	for vi, v := range variants {
		success.Series = append(success.Series, meanSeries("LHT "+v.name, xs, ysSuccess[vi]))
		cost.Series = append(cost.Series, meanSeries("LHT "+v.name, xs, ysCost[vi]))
	}
	return success, cost, nil
}
