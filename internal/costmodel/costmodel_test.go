package costmodel

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Params{RecordUnit: 1, LookupUnit: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{{}, {RecordUnit: 1}, {LookupUnit: 1}, {RecordUnit: -1, LookupUnit: 1}} {
		if err := p.Validate(); !errors.Is(err, ErrParams) {
			t.Errorf("Validate(%+v) = %v", p, err)
		}
	}
}

func TestEquations(t *testing.T) {
	p := Params{RecordUnit: 2, LookupUnit: 10}
	theta := 100
	if got, want := p.PsiLHT(theta), 0.5*100*2+10.0; got != want {
		t.Errorf("PsiLHT = %v, want %v", got, want)
	}
	if got, want := p.PsiPHT(theta), 100*2+40.0; got != want {
		t.Errorf("PsiPHT = %v, want %v", got, want)
	}
	if got, want := p.Gamma(theta), 20.0; got != want {
		t.Errorf("Gamma = %v, want %v", got, want)
	}
	// Equation 3 must equal 1 - PsiLHT/PsiPHT.
	if got, want := p.SavingRatio(theta), 1-p.PsiLHT(theta)/p.PsiPHT(theta); math.Abs(got-want) > 1e-12 {
		t.Errorf("SavingRatio = %v, want %v", got, want)
	}
}

// TestSavingRatioBounds pins the paper's headline claim: the saving ratio
// spans (1/2, 3/4], monotonically decreasing in gamma.
func TestSavingRatioBounds(t *testing.T) {
	if got := SavingRatioFromGamma(0); got != 0.75 {
		t.Errorf("gamma=0: %v, want 0.75", got)
	}
	if got := SavingRatioFromGamma(1e12); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("gamma->inf: %v, want ~0.5", got)
	}
	prop := func(g float64) bool {
		gamma := math.Abs(g)
		if math.IsInf(gamma, 0) || math.IsNaN(gamma) {
			return true
		}
		r := SavingRatioFromGamma(gamma)
		return r > 0.5-1e-9 && r <= 0.75 && SavingRatioFromGamma(gamma+1) <= r
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMeasuredSaving(t *testing.T) {
	p := Params{RecordUnit: 1, LookupUnit: 1}
	// LHT: 50 records + 1 lookup per split; PHT: 100 records + 4 lookups.
	got := p.MeasuredSaving(50, 1, 100, 4)
	want := 1 - 51.0/104.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MeasuredSaving = %v, want %v", got, want)
	}
	if p.MeasuredSaving(1, 1, 0, 0) != 0 {
		t.Error("zero PHT cost should yield 0")
	}
}
