// Quickstart: the smallest end-to-end LHT program. It builds an index
// over the single-process substrate, loads a thousand records, and runs
// one of each query type, printing the DHT-lookup cost alongside every
// result - the currency the paper measures everything in.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lht"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ix, err := lht.New(lht.NewLocalDHT(), lht.DefaultConfig())
	if err != nil {
		return err
	}

	// Load 1000 records with uniform keys in [0, 1).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		rec := lht.Record{Key: rng.Float64(), Value: []byte(fmt.Sprintf("item-%03d", i))}
		if _, err := ix.Insert(rec); err != nil {
			return err
		}
	}
	if _, err := ix.Insert(lht.Record{Key: 0.42, Value: []byte("the answer")}); err != nil {
		return err
	}

	// Exact-match query (section 5): an LHT lookup, ~log(D/2) DHT-gets.
	rec, cost, err := ix.Get(0.42)
	if err != nil {
		return err
	}
	fmt.Printf("exact-match 0.42     -> %-12q %d DHT-lookups\n", rec.Value, cost.Lookups)

	// Range query (section 6): near-optimal B+3 lookups for B buckets.
	recs, cost, err := ix.Range(0.40, 0.45)
	if err != nil {
		return err
	}
	fmt.Printf("range [0.40, 0.45)   -> %3d records  %d DHT-lookups, %d parallel steps\n",
		len(recs), cost.Lookups, cost.Steps)

	// Min/max queries (Theorem 3): exactly one DHT-lookup.
	minRec, cost, err := ix.Min()
	if err != nil {
		return err
	}
	fmt.Printf("min                  -> key %.6f  %d DHT-lookup\n", minRec.Key, cost.Lookups)
	maxRec, cost, err := ix.Max()
	if err != nil {
		return err
	}
	fmt.Printf("max                  -> key %.6f  %d DHT-lookup\n", maxRec.Key, cost.Lookups)

	// Maintenance summary (section 8): one DHT-lookup and half a bucket
	// moved per split.
	s := ix.Metrics().Flat()
	alpha, splits := ix.AlphaMean()
	fmt.Printf("\nmaintenance: %d splits, %d record slots moved, %d maintenance lookups\n",
		s.Splits, s.MovedRecords, s.MaintLookups)
	fmt.Printf("average alpha over %d splits: %.4f (theory: 1/2 + 1/(2*theta) = %.4f)\n",
		splits, alpha, 0.5+1.0/(2*float64(ix.Config().SplitThreshold)))
	return nil
}
