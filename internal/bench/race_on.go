//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. The
// detector slows execution 10-20x, which turns the chaos ablation's
// real-time deadlines and fault schedules into CPU measurements; the
// degradation plane's *race* coverage lives in the tcpnet, netchaos and
// dht test suites, which CI soaks under -race separately.
const raceEnabled = true
