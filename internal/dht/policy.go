package dht

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lht/internal/metrics"
)

// ErrRetriesExhausted reports that a transient fault persisted through
// every attempt the policy allows. The last underlying fault stays in the
// chain, so errors.Is against the root cause (and IsTransient) still
// match.
var ErrRetriesExhausted = errors.New("dht: retries exhausted")

// Policy describes how the retry wrapper produced by WithPolicy treats
// transient substrate faults: how often to retry, how long to back off,
// and what counts as transient in the first place. The zero value is
// usable: DefaultPolicy's attempts and delays, no jitter.
type Policy struct {
	// MaxAttempts is the total number of attempts per operation,
	// including the first (so MaxAttempts = 1 disables retrying).
	// Default 4.
	MaxAttempts int

	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it, capped at MaxDelay. Default 5ms.
	BaseDelay time.Duration

	// MaxDelay caps the exponential backoff. Default 250ms.
	MaxDelay time.Duration

	// Jitter randomizes each backoff delay to d * (1-Jitter/2 .. 1+Jitter/2),
	// decorrelating clients that tripped over the same fault. Must be in
	// [0, 1]; 0 disables jitter (DefaultPolicy uses 0.5).
	Jitter float64

	// Classify reports whether an error is a transient fault worth
	// retrying. Defaults to IsTransient: simnet unreachability, marked
	// transients and net timeouts retry; ErrNotFound and context
	// cancellation/expiry never do.
	Classify func(error) bool

	// Counters, when non-nil, receives the policy's observability
	// signals: one Retry per re-attempt, and one Cancellation /
	// DeadlineExceeded when a backoff wait is cut short by the context.
	// (Attempt costs themselves are charged by whatever Instrumented
	// wrapper sits below this one, which is what keeps every retry an
	// honest DHT-lookup in the paper's cost model.)
	Counters *metrics.Counters

	// Seed drives the jitter; 0 means a fixed default, keeping
	// experiments reproducible.
	Seed int64
}

// DefaultPolicy returns the retry policy used when a zero Policy is
// supplied: 4 attempts, 5ms base delay doubling to a 250ms cap, 50%
// jitter, IsTransient classification.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Jitter:      0.5,
	}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = d.Jitter
	}
	if p.Classify == nil {
		p.Classify = IsTransient
	}
	return p
}

// PolicyDHT is the retry/backoff wrapper created by WithPolicy.
type PolicyDHT struct {
	inner DHT
	p     Policy

	mu  sync.Mutex
	rng *rand.Rand
}

var (
	_ DHT         = (*PolicyDHT)(nil)
	_ Batcher     = (*PolicyDHT)(nil)
	_ Conditional = (*PolicyDHT)(nil)
)

// WithPolicy wraps inner so every routed operation retries transient
// faults with capped, jittered exponential backoff. Permanent outcomes
// (ErrNotFound, context cancellation, anything Classify rejects) pass
// through untouched on the first attempt.
//
// To keep the paper's cost model honest, wrap the instrumented layer —
// WithPolicy(NewInstrumented(substrate, c), Policy{Counters: c}) — so
// every retry is charged as a full DHT-lookup; the index layers compose
// the stack this way when Config.Policy is set.
func WithPolicy(inner DHT, p Policy) *PolicyDHT {
	p = p.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &PolicyDHT{inner: inner, p: p, rng: rand.New(rand.NewSource(seed))}
}

// Inner returns the wrapped DHT.
func (d *PolicyDHT) Inner() DHT { return d.inner }

// delay computes the jittered backoff before retry number n (0-based).
func (d *PolicyDHT) delay(n int) time.Duration {
	delay := d.p.BaseDelay << uint(n)
	if delay <= 0 || delay > d.p.MaxDelay {
		delay = d.p.MaxDelay
	}
	if d.p.Jitter > 0 {
		d.mu.Lock()
		f := 1 + d.p.Jitter*(d.rng.Float64()-0.5)
		d.mu.Unlock()
		delay = time.Duration(float64(delay) * f)
	}
	return delay
}

// backoff waits the n-th retry delay, aborting early when ctx is done.
func (d *PolicyDHT) backoff(ctx context.Context, n int) error {
	t := time.NewTimer(d.delay(n))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		err := ctx.Err()
		if d.p.Counters != nil {
			switch {
			case errors.Is(err, context.Canceled):
				d.p.Counters.AddCancellations(1)
			case errors.Is(err, context.DeadlineExceeded):
				d.p.Counters.AddDeadlineExceeded(1)
			}
		}
		return fmt.Errorf("dht: backoff interrupted: %w", err)
	}
}

// do runs op under the retry policy. Re-attempts run with the context's
// phase label switched to PhaseRetry, so the instrumented layer below
// attributes their lookups to retry traffic while the first attempt
// keeps the phase of the algorithm that issued it.
func (d *PolicyDHT) do(ctx context.Context, op func(context.Context) error) error {
	var err error
	actx := ctx
	for attempt := 0; attempt < d.p.MaxAttempts; attempt++ {
		if attempt > 0 {
			if d.p.Counters != nil {
				d.p.Counters.AddRetries(1)
			}
			if berr := d.backoff(ctx, attempt-1); berr != nil {
				return berr
			}
			actx = metrics.WithPhase(ctx, metrics.PhaseRetry)
		}
		err = op(actx)
		if err == nil || !d.p.Classify(err) {
			return err
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, d.p.MaxAttempts, err)
}

// retryBatch drives the shared retry loop of GetBatch/PutBatch. pending
// holds the slot indices whose last error classified transient; attempt
// re-issues exactly that subset (one sub-batch per round, with one shared
// backoff) and returns the slots still transient. Slots that stay
// transient through every allowed attempt get their error wrapped with
// ErrRetriesExhausted.
func (d *PolicyDHT) retryBatch(ctx context.Context, errs []error, pending []int, attempt func(context.Context, []int)) {
	for round := 1; round < d.p.MaxAttempts && len(pending) > 0; round++ {
		if d.p.Counters != nil {
			d.p.Counters.AddRetries(int64(len(pending)))
		}
		if berr := d.backoff(ctx, round-1); berr != nil {
			for _, i := range pending {
				errs[i] = berr
			}
			return
		}
		attempt(metrics.WithPhase(ctx, metrics.PhaseRetry), pending)
		var still []int
		for _, i := range pending {
			if errs[i] != nil && d.p.Classify(errs[i]) {
				still = append(still, i)
			}
		}
		pending = still
	}
	for _, i := range pending {
		errs[i] = fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, d.p.MaxAttempts, errs[i])
	}
}

// transientSlots returns the indices whose error the policy classifies as
// retryable.
func (d *PolicyDHT) transientSlots(errs []error) []int {
	var pending []int
	for i, err := range errs {
		if err != nil && d.p.Classify(err) {
			pending = append(pending, i)
		}
	}
	return pending
}

// GetBatch implements Batcher with per-slot retries: after each attempt
// only the keys whose errors classify transient re-issue, as one
// sub-batch per backoff round, so a mostly-successful batch never repeats
// its successful keys. Every re-issued key is charged again by whatever
// Instrumented wrapper sits below this one.
func (d *PolicyDHT) GetBatch(ctx context.Context, keys []string) ([]Value, []error) {
	vals, errs := DoGetBatch(ctx, d.inner, keys)
	d.retryBatch(ctx, errs, d.transientSlots(errs), func(ctx context.Context, pending []int) {
		sub := make([]string, len(pending))
		for j, i := range pending {
			sub[j] = keys[i]
		}
		svals, serrs := DoGetBatch(ctx, d.inner, sub)
		for j, i := range pending {
			vals[i], errs[i] = svals[j], serrs[j]
		}
	})
	return vals, errs
}

// PutBatch implements Batcher with the same failed-subset retry loop as
// GetBatch.
func (d *PolicyDHT) PutBatch(ctx context.Context, kvs []KV) []error {
	errs := DoPutBatch(ctx, d.inner, kvs)
	d.retryBatch(ctx, errs, d.transientSlots(errs), func(ctx context.Context, pending []int) {
		sub := make([]KV, len(pending))
		for j, i := range pending {
			sub[j] = kvs[i]
		}
		serrs := DoPutBatch(ctx, d.inner, sub)
		for j, i := range pending {
			errs[i] = serrs[j]
		}
	})
	return errs
}

// Get implements DHT with retries.
func (d *PolicyDHT) Get(ctx context.Context, key string) (Value, error) {
	var v Value
	err := d.do(ctx, func(ctx context.Context) error {
		var e error
		v, e = d.inner.Get(ctx, key)
		return e
	})
	return v, err
}

// Put implements DHT with retries.
func (d *PolicyDHT) Put(ctx context.Context, key string, v Value) error {
	return d.do(ctx, func(ctx context.Context) error {
		return d.inner.Put(ctx, key, v)
	})
}

// Take implements DHT with retries. Take is safe to retry against the
// repository's substrates: delivery is synchronous, so a failed attempt
// means the fetch-and-delete did not happen.
func (d *PolicyDHT) Take(ctx context.Context, key string) (Value, error) {
	var v Value
	err := d.do(ctx, func(ctx context.Context) error {
		var e error
		v, e = d.inner.Take(ctx, key)
		return e
	})
	return v, err
}

// Remove implements DHT with retries.
func (d *PolicyDHT) Remove(ctx context.Context, key string) error {
	return d.do(ctx, func(ctx context.Context) error {
		return d.inner.Remove(ctx, key)
	})
}

// Write implements DHT with retries (Write stays free in the cost model;
// the instrumented layer below charges nothing for it).
func (d *PolicyDHT) Write(ctx context.Context, key string, v Value) error {
	return d.do(ctx, func(ctx context.Context) error {
		return d.inner.Write(ctx, key, v)
	})
}

// The conditional operations retry transient faults exactly like their
// unconditional counterparts. CAS conflicts are permanent outcomes —
// IsTransient rejects them — so a lost compare-and-swap surfaces to the
// index layer's optimistic-retry loop on the first attempt instead of
// burning backoff rounds on an identical doomed operation.

// PutIf implements Conditional with retries on transient faults only.
func (d *PolicyDHT) PutIf(ctx context.Context, key string, v Value, ifEpoch uint64) error {
	return d.do(ctx, func(ctx context.Context) error {
		return DoPutIf(ctx, d.inner, key, v, ifEpoch)
	})
}

// CreateIf implements Conditional with retries on transient faults only.
func (d *PolicyDHT) CreateIf(ctx context.Context, key string, v Value) error {
	return d.do(ctx, func(ctx context.Context) error {
		return DoCreateIf(ctx, d.inner, key, v)
	})
}

// RemoveIf implements Conditional with retries on transient faults only.
func (d *PolicyDHT) RemoveIf(ctx context.Context, key string, ifEpoch uint64) error {
	return d.do(ctx, func(ctx context.Context) error {
		return DoRemoveIf(ctx, d.inner, key, ifEpoch)
	})
}

// WriteIf implements Conditional with retries on transient faults only.
func (d *PolicyDHT) WriteIf(ctx context.Context, key string, v Value, ifEpoch uint64) error {
	return d.do(ctx, func(ctx context.Context) error {
		return DoWriteIf(ctx, d.inner, key, v, ifEpoch)
	})
}
