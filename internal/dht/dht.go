// Package dht defines the generic put/get interface that over-DHT
// indexing schemes are built on (the "over-DHT paradigm" of paper section
// 2), together with a single-process implementation and a cost-counting
// instrumentation wrapper.
//
// Every routed operation (Put, Get, Take, Remove) costs exactly one
// DHT-lookup in the paper's cost model: the underlying substrate resolves
// the key to its responsible peer (typically O(log N) physical hops) and
// performs the storage action there. Write is the deliberate exception: it
// rewrites a value on the peer that already stores it ("write b back to
// the local disk", Algorithm 1 line 10) and costs no lookup.
//
// Implementations in this repository: Local (this package), the Chord ring
// adapter (internal/chord), the Kademlia adapter (internal/kademlia), and
// the TCP cluster client (internal/tcpnet).
package dht

import "errors"

// ErrNotFound reports that no value is stored under the requested key.
// Over-DHT index algorithms rely on distinguishing this outcome: a failed
// DHT-get steers the LHT lookup binary search (Algorithm 2 line 7).
var ErrNotFound = errors.New("dht: key not found")

// Value is the unit of storage. Index layers store their bucket structures
// directly; substrates that cross process boundaries serialize values with
// a codec supplied at construction.
type Value any

// DHT is the substrate interface the index layers program against. A DHT
// is a flat key-value store addressed by opaque string keys; the index
// layers derive keys from tree-node labels.
//
// Implementations must be safe for concurrent use.
type DHT interface {
	// Get returns the value stored under key, or ErrNotFound. Costs one
	// DHT-lookup whether or not the key exists.
	Get(key string) (Value, error)

	// Put stores v under key, replacing any previous value. Costs one
	// DHT-lookup.
	Put(key string, v Value) error

	// Take atomically removes and returns the value stored under key, or
	// returns ErrNotFound. Costs one DHT-lookup. LHT leaf merges use Take
	// to fetch-and-delete the sibling bucket in a single routing.
	Take(key string) (Value, error)

	// Remove deletes the value under key if present; removing an absent
	// key is not an error. Costs one DHT-lookup.
	Remove(key string) error

	// Write rewrites the value stored under key in place on the peer that
	// already holds it, without routing; it is an error (ErrNotFound) if
	// the key is not stored. Costs zero DHT-lookups. Index layers call
	// Write after mutating a bucket they just fetched.
	Write(key string, v Value) error
}
