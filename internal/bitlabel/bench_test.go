package bitlabel

import (
	"math/rand"
	"testing"
)

func randomLabels(n int) []Label {
	rng := rand.New(rand.NewSource(1))
	out := make([]Label, n)
	for i := range out {
		out[i] = MustParse(randLabelString(rng, 60))
	}
	return out
}

// BenchmarkName measures f_n, the hot operation of every lookup probe.
func BenchmarkName(b *testing.B) {
	labels := randomLabels(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = labels[i%len(labels)].Name()
	}
}

// BenchmarkNextName measures f_nn, the binary search's skip step.
func BenchmarkNextName(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	type pair struct{ x, mu Label }
	pairs := make([]pair, 1024)
	for i := range pairs {
		mu := MustParse(randLabelString(rng, 40))
		for mu.Len() < 8 {
			mu = MustParse(randLabelString(rng, 40))
		}
		pairs[i] = pair{x: mu.Prefix(1 + rng.Intn(mu.Len()-1)), mu: mu}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		_, _ = p.x.NextName(p.mu)
	}
}

// BenchmarkNeighbors measures the range-forwarding branch enumeration.
func BenchmarkNeighbors(b *testing.B) {
	labels := randomLabels(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := labels[i%len(labels)]
		_, _ = l.RightNeighbor()
		_, _ = l.LeftNeighbor()
	}
}

// BenchmarkParseAndString measures label text conversion (DHT keys).
func BenchmarkParseAndString(b *testing.B) {
	labels := randomLabels(1024)
	keys := make([]string, len(labels))
	for i, l := range labels {
		keys[i] = l.String()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Parse(keys[i%len(keys)])
		if err != nil {
			b.Fatal(err)
		}
		_ = l.Key()
	}
}
