package bench

import (
	"errors"
	"fmt"

	"lht/internal/dht"
	"lht/internal/dst"
	"lht/internal/lht"
	"lht/internal/metrics"
	"lht/internal/pht"
	"lht/internal/record"
	"lht/internal/rst"
	"lht/internal/workload"
)

// RunRelatedWork extends the paper's evaluation with the other baselines
// its related-work section discusses: the Distributed Segment Tree and
// the Range Search Tree. It compares LHT, PHT, DST and RST on the full
// operation mix - per-insert bandwidth, exact-match cost, range bandwidth
// and range latency - and substantiates section 2's qualitative claims
// quantitatively: DST's replication buys one-lookup exact-match and
// low-latency ranges at the price of D lookups per insertion; RST's
// globally-known tree buys optimal queries at the price of a broadcast
// on every split - cheap on the paper's 20-peer testbed, and the
// dominant cost on a 1000-peer network, which is the unscalability
// argument (the two RST columns differ only in P).
func RunRelatedWork(o Options, distKind workload.Dist, size int, span float64) ([]Result, error) {
	o = o.WithDefaults()
	mkResult := func(name, title, ylabel string) Result {
		return Result{
			Name:   name,
			Title:  title,
			XLabel: "scheme",
			YLabel: ylabel,
		}
	}
	insertRes := mkResult("RW insert", fmt.Sprintf("Per-insert bandwidth, %d records (D=%d)", size, o.Depth), "DHT-lookups per insert")
	searchRes := mkResult("RW search", "Exact-match query cost", "DHT-lookups per query")
	rangeBWRes := mkResult("RW range-bw", fmt.Sprintf("Range bandwidth, span %.2g", span), "DHT-lookups per query")
	rangeLatRes := mkResult("RW range-lat", fmt.Sprintf("Range latency, span %.2g", span), "parallel steps per query")

	type scheme struct {
		name   string
		insert func(record.Record) (metrics.Cost, error)
		search func(float64) (metrics.Cost, error)
		rrange func(lo, hi float64) (metrics.Cost, error)
	}
	schemes := make([][]float64, 4) // insert, search, rangeBW, rangeLat per scheme column
	var names []string

	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(distKind, o.Seed+int64(t))
		recs := gen.Records(size)
		queries := gen.LookupKeys(o.Queries)

		lix, err := o.newLHT(o.Theta, o.Depth)
		if err != nil {
			return nil, err
		}
		pix, err := o.newPHT(o.Theta, o.Depth)
		if err != nil {
			return nil, err
		}
		dix, err := dst.New(dht.NewLocal(), dst.Config{SaturationThreshold: o.Theta, Depth: o.Depth})
		if err != nil {
			return nil, err
		}
		rix, err := rst.New(dht.NewLocal(), rst.Config{
			SplitThreshold: o.Theta, MergeThreshold: o.Theta / 2, Depth: o.Depth, Peers: 20,
		})
		if err != nil {
			return nil, err
		}
		rixBig, err := rst.New(dht.NewLocal(), rst.Config{
			SplitThreshold: o.Theta, MergeThreshold: o.Theta / 2, Depth: o.Depth, Peers: 1000,
		})
		if err != nil {
			return nil, err
		}
		all := []scheme{
			{
				name:   "LHT",
				insert: func(r record.Record) (metrics.Cost, error) { return lix.Insert(r) },
				search: func(k float64) (metrics.Cost, error) { _, c, err := lix.Search(k); return c, ignoreNotFound(err) },
				rrange: func(lo, hi float64) (metrics.Cost, error) { _, c, err := lix.Range(lo, hi); return c, err },
			},
			{
				name:   "PHT(seq)",
				insert: func(r record.Record) (metrics.Cost, error) { return pix.Insert(r) },
				search: func(k float64) (metrics.Cost, error) { _, c, err := pix.Search(k); return c, ignoreNotFound(err) },
				rrange: func(lo, hi float64) (metrics.Cost, error) { _, c, err := pix.RangeSequential(lo, hi); return c, err },
			},
			{
				name:   "PHT(par)",
				insert: nil, // same index as PHT(seq); insertion measured once
				search: nil,
				rrange: func(lo, hi float64) (metrics.Cost, error) { _, c, err := pix.RangeParallel(lo, hi); return c, err },
			},
			{
				name:   "DST",
				insert: func(r record.Record) (metrics.Cost, error) { return dix.Insert(r) },
				search: func(k float64) (metrics.Cost, error) { _, c, err := dix.Search(k); return c, ignoreNotFound(err) },
				rrange: func(lo, hi float64) (metrics.Cost, error) { _, c, err := dix.Range(lo, hi); return c, err },
			},
			{
				name:   "RST(P=20)",
				insert: func(r record.Record) (metrics.Cost, error) { return rix.Insert(r) },
				search: func(k float64) (metrics.Cost, error) { _, c, err := rix.Search(k); return c, ignoreNotFound(err) },
				rrange: func(lo, hi float64) (metrics.Cost, error) { _, c, err := rix.Range(lo, hi); return c, err },
			},
			{
				name:   "RST(P=1000)",
				insert: func(r record.Record) (metrics.Cost, error) { return rixBig.Insert(r) },
				search: func(k float64) (metrics.Cost, error) { _, c, err := rixBig.Search(k); return c, ignoreNotFound(err) },
				rrange: func(lo, hi float64) (metrics.Cost, error) { _, c, err := rixBig.Range(lo, hi); return c, err },
			},
		}
		if names == nil {
			for _, s := range all {
				names = append(names, s.name)
			}
			for i := range schemes {
				schemes[i] = make([]float64, len(all))
			}
		}

		for si, s := range all {
			if s.insert == nil {
				continue
			}
			var total int
			for _, r := range recs {
				c, err := s.insert(r)
				if err != nil {
					return nil, fmt.Errorf("%s insert: %w", s.name, err)
				}
				total += c.Lookups
			}
			schemes[0][si] += float64(total) / float64(len(recs)) / float64(o.Trials)

			total = 0
			for _, q := range queries {
				c, err := s.search(q)
				if err != nil {
					return nil, fmt.Errorf("%s search: %w", s.name, err)
				}
				total += c.Lookups
			}
			schemes[1][si] += float64(total) / float64(len(queries)) / float64(o.Trials)
		}
		// PHT(par) shares PHT(seq)'s structure for insert/search.
		schemes[0][2] = schemes[0][1]
		schemes[1][2] = schemes[1][1]

		for si, s := range all {
			var bw, lat int
			for q := 0; q < o.Queries; q++ {
				lo, hi := gen.RangeQuery(span)
				c, err := s.rrange(lo, hi)
				if err != nil {
					return nil, fmt.Errorf("%s range: %w", s.name, err)
				}
				bw += c.Lookups
				lat += c.Steps
			}
			schemes[2][si] += float64(bw) / float64(o.Queries) / float64(o.Trials)
			schemes[3][si] += float64(lat) / float64(o.Queries) / float64(o.Trials)
		}
	}

	attach := func(res *Result, row []float64) {
		for i, name := range names {
			res.Series = append(res.Series, Series{
				Name:   name,
				Points: []Point{{X: 1, Y: row[i]}},
			})
		}
	}
	attach(&insertRes, schemes[0])
	attach(&searchRes, schemes[1])
	attach(&rangeBWRes, schemes[2])
	attach(&rangeLatRes, schemes[3])
	return []Result{insertRes, searchRes, rangeBWRes, rangeLatRes}, nil
}

// ignoreNotFound maps "key not found" outcomes to success: the related-
// work comparison queries uniform keys that may or may not be indexed,
// and a clean miss is a valid, fully-priced answer.
func ignoreNotFound(err error) error {
	if err == nil ||
		errors.Is(err, lht.ErrKeyNotFound) ||
		errors.Is(err, pht.ErrKeyNotFound) ||
		errors.Is(err, dst.ErrKeyNotFound) ||
		errors.Is(err, rst.ErrKeyNotFound) {
		return nil
	}
	return err
}
