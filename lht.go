// Package lht is LHT, a low-maintenance hash tree for data indexing over
// DHTs (Tang & Zhou, ICDCS 2008).
//
// LHT turns any DHT with a put/get interface into an order-preserving
// index over one-dimensional keys in [0, 1), supporting exact-match,
// range, and min/max queries. Its distinguishing property is maintenance
// cost: a novel naming function maps the leaves of a distributed space
// partition tree onto the DHT so that a leaf split keeps one half on its
// current peer - one DHT-lookup and half a bucket of data per split,
// 50-75% cheaper than the prior state of the art (PHT), while queries get
// faster, not slower.
//
// Quick start:
//
//	d := lht.NewLocalDHT()                     // or NewChordDHT / NewKademliaDHT
//	ix, err := lht.New(d, lht.WithLeafCache(1024))
//	...
//	ix.InsertContext(ctx, lht.Record{Key: 0.42, Value: []byte("answer")})
//	recs, cost, err := ix.RangeContext(ctx, 0.4, 0.6)
//
// New takes functional options (WithLeafCache, WithPolicy, WithBatchSize,
// WithTraceSink, ...) layered over DefaultConfig; a full Config is itself
// an option, so New(d, cfg) keeps working and options after it override
// single fields.
//
// # Context-first API
//
// The context-taking methods (GetContext, RangeContext, InsertContext,
// ...) are the canonical API: they thread a context.Context down to the
// substrate, where deadlines become socket deadlines on networked
// substrates and cancellation stops multi-step algorithms (including
// parallel range forwarding) promptly. The context also carries the
// operation and phase labels the observability plane attributes traffic
// to. Each plain variant (Get, Range, Insert, ...) is shorthand for the
// Context method under context.Background(); see the compatibility
// section at the bottom of this file.
//
// Read-heavy clients can enable the client-side leaf cache
// (WithLeafCache): exact-match lookups then amortize to a single DHT-get
// instead of Algorithm 2's ~log2(D) sequential probes, with staleness
// after splits/merges detected and repaired soundly, so query results
// never change — only their cost (see Snapshot.Cache). The WithPolicy
// option adds a retry/backoff layer that absorbs transient substrate
// faults (see Policy and DefaultPolicy); every retry is charged as a
// DHT-lookup, keeping the paper's cost model honest.
//
// # Observability
//
// Every index keeps per-operation-class latency histograms and a
// phase-attributed lookup matrix alongside the paper's cost counters:
// Metrics returns the grouped Snapshot (Lookup, Cache, Retry, Batch,
// Repair, Latency sub-structs; Flat() recovers the one-level legacy
// names). WritePrometheus / MetricsHandler / NewMetricsMux export the
// same counters in Prometheus text format, and WithTraceSink streams one
// structured OpEvent per DHT operation into a sink such as the bounded
// NewTraceRing. cmd/lht-node and cmd/lht-bench serve these on a -metrics
// HTTP endpoint together with net/http/pprof.
//
// Substrates that implement the optional Batcher interface serve
// many-key rounds — bulk loads, parallel range sweeps — in one network
// round trip per peer instead of one per key. Batching changes latency
// and round-trip counts only: Lookups (the paper's bandwidth measure)
// and query results are identical either way, and WithoutBatch restores
// strict per-op behavior for comparison.
//
// The substrates, the PHT baseline, and the experiment harness that
// regenerates the paper's figures live under internal/; see DESIGN.md for
// the system inventory and EXPERIMENTS.md for reproduction results.
package lht

import (
	"context"
	"io"
	"net/http"
	"time"

	"lht/internal/dht"
	ilht "lht/internal/lht"
	"lht/internal/metrics"
	"lht/internal/record"
)

// Record is one indexed data unit: a key in [0, 1) plus an opaque payload.
type Record = record.Record

// Config tunes an index: theta_split, the merge threshold, the maximum
// tree depth D, the client-side leaf cache, batching, retry policy, and
// observability wiring. A Config is itself an Option (replacing the
// whole configuration built so far), so New(d, cfg) and
// New(d, cfg, lht.WithTraceSink(s)) both work.
type Config = ilht.Config

// Option configures an index at construction; see New. Options layer
// over DefaultConfig in order.
type Option = ilht.Option

// DefaultLeafCacheSize is the leaf-cache capacity used when the leaf
// cache is enabled with size 0.
const DefaultLeafCacheSize = ilht.DefaultLeafCacheSize

// Cost reports the DHT traffic of one operation: Lookups (bandwidth) and
// Steps (latency in dependent rounds).
type Cost = metrics.Cost

// Snapshot is the cumulative counter state of an index client, grouped
// by concern: Lookup (the paper's cost counters), Cache, Retry, Batch,
// Repair, and Latency (per-operation-class histograms and phase
// attribution). Flat() recovers the legacy one-level field names.
type Snapshot = metrics.Snapshot

// FlatSnapshot is Snapshot flattened to one-level counter names, for
// column-oriented consumers.
type FlatSnapshot = metrics.FlatSnapshot

// Bucket is a leaf bucket of the partition tree, as returned by inspection
// helpers.
type Bucket = ilht.Bucket

// TraceSink receives one structured OpEvent per DHT operation an index
// performs; attach one with WithTraceSink. Implementations must be safe
// for concurrent use (parallel range forwarding emits concurrently).
type TraceSink = metrics.TraceSink

// OpEvent is one traced DHT operation: kind, key, operation class and
// phase, duration, and outcome.
type OpEvent = metrics.OpEvent

// TraceRing is a bounded in-memory TraceSink retaining the most recent
// events; create one with NewTraceRing.
type TraceRing = metrics.Ring

// NewTraceRing returns a TraceRing retaining the last n events.
func NewTraceRing(n int) *TraceRing { return metrics.NewRing(n) }

// WritePrometheus writes a Snapshot in Prometheus text exposition format.
func WritePrometheus(w io.Writer, s Snapshot) error { return metrics.WritePrometheus(w, s) }

// MetricsHandler serves snap() in Prometheus text format on every GET.
func MetricsHandler(snap func() Snapshot) http.Handler { return metrics.Handler(snap) }

// NewMetricsMux returns an http.ServeMux serving /metrics (Prometheus
// text format from snap) and the net/http/pprof profile endpoints.
func NewMetricsMux(snap func() Snapshot) *http.ServeMux { return metrics.NewMux(snap) }

// Errors surfaced by index operations.
var (
	// ErrKeyNotFound reports an exact-match query or deletion for an
	// unindexed key.
	ErrKeyNotFound = ilht.ErrKeyNotFound
	// ErrEmpty reports a min/max query against an empty index.
	ErrEmpty = ilht.ErrEmpty
	// ErrBadRange reports a malformed range query.
	ErrBadRange = ilht.ErrBadRange
	// ErrNotFound is the substrate-level "no value under this key".
	ErrNotFound = dht.ErrNotFound
	// ErrNotEmpty reports a BulkLoad into a non-empty index.
	ErrNotEmpty = ilht.ErrNotEmpty
	// ErrPartialLoad reports a BulkLoad that failed after shipping some
	// leaves: the tree is partially populated, not absent. The error is
	// always a *PartialLoadError carrying ship counts and the root cause.
	ErrPartialLoad = ilht.ErrPartialLoad
	// ErrNoCluster reports a cluster operation (ClusterStatus) against a
	// substrate without a membership plane.
	ErrNoCluster = ilht.ErrNoCluster
)

// PartialLoadError is the error type behind ErrPartialLoad: how many
// leaves shipped before the failure, out of how many planned, and the
// first real cause (cancellations yield to substrate faults).
type PartialLoadError = ilht.PartialLoadError

// DefaultConfig returns the paper's experiment defaults: theta_split =
// 100, D = 20, merging enabled.
func DefaultConfig() Config { return ilht.DefaultConfig() }

// WithLeafCache enables the client-side leaf cache with the given
// capacity (0 means DefaultLeafCacheSize).
func WithLeafCache(size int) Option { return ilht.WithLeafCache(size) }

// WithPolicy interposes a retry/backoff layer absorbing transient
// substrate faults; every retry is charged as a DHT-lookup.
func WithPolicy(p Policy) Option { return ilht.WithPolicy(p) }

// WithBatchSize caps the keys per batched DHT operation (bulk load
// rounds, parallel range fan-out).
func WithBatchSize(n int) Option { return ilht.WithBatchSize(n) }

// WithTraceSink attaches a structured op-event sink; see TraceSink and
// NewTraceRing.
func WithTraceSink(s TraceSink) Option { return ilht.WithTraceSink(s) }

// WithParallelRange toggles concurrent range-query forwarding (on by
// default).
func WithParallelRange(on bool) Option { return ilht.WithParallelRange(on) }

// WithDepth sets D, the a-priori maximum tree depth.
func WithDepth(d int) Option { return ilht.WithDepth(d) }

// WithThresholds sets theta_split and the merge hysteresis threshold.
func WithThresholds(split, merge int) Option { return ilht.WithThresholds(split, merge) }

// WithHotSplitRate enables load-aware leaf splitting: a leaf whose
// request rate crosses the threshold (requests/sec) splits even below
// theta_split. 0 (the default) disables the load plane.
func WithHotSplitRate(rate float64) Option { return ilht.WithHotSplitRate(rate) }

// WithRereplication extends Scrub with a replica-repair pass over
// substrates with a membership plane (the tcpnet cluster client): after
// the structural walk, every live storage key is probed on all of its
// ring owners and missing copies are restored from the highest-epoch
// survivor. A no-op on other substrates; off by default.
func WithRereplication(on bool) Option { return ilht.WithRereplication(on) }

// WithHedgedGets enables quantile-triggered hedged reads: an idempotent
// DHT-get still unanswered after the trigger delay (observed p95,
// floored at after) races a duplicate, first answer wins. Over a
// replicated TCP substrate the duplicate probes a different holder, so
// one slow or partitioned node stops defining the read tail. Hedges are
// physical round trips, never DHT-lookups; see Config.HedgeAfter.
func WithHedgedGets(after time.Duration) Option { return ilht.WithHedgedGets(after) }

// WithCoalescedGets toggles singleflight read coalescing: concurrent
// reads of one bucket through this index share a single substrate
// fetch. Off by default.
func WithCoalescedGets(on bool) Option { return ilht.WithCoalescedGets(on) }

// Index is an LHT index over a DHT substrate. Create one with New.
//
// Concurrency contract: every operation is safe to call concurrently
// from any number of goroutines and any number of Index handles over the
// same substrate — readers, writers (Insert, Delete), and a repairing
// Scrub included. Mutations are optimistic: each one rebuilds the target
// bucket from a fresh read and commits it with an epoch-guarded
// compare-and-swap on the storing peer (the substrate's Conditional
// capability), retrying from a fresh read whenever a concurrent writer
// won the bucket first. Splits and merges yield silently to a concurrent
// winner and are retried by whichever writer next visits the overweight
// (or underweight) leaf, so structural maintenance needs no coordination
// either. Lost CAS rounds are visible in Snapshot.Write (CASConflicts,
// WriterRetries).
//
// The exception is substrates without native Conditional support: there
// the conditional ops degrade to a non-atomic fetch-verify-write
// (counted in Snapshot.Write.CASFallbacks), which is sound only when the
// caller serializes writers externally — any number of concurrent
// readers, or exactly one writer. Every bundled substrate (Local, Chord,
// Kademlia, tcpnet over either wire) is native. BulkLoad remains an
// empty-index construction pass, not a concurrent mutation.
type Index struct {
	inner *ilht.Index
}

// New creates an index client over a substrate, bootstrapping the empty
// tree if the substrate holds none. With no options the index uses
// DefaultConfig; pass options (or a whole Config, which is an Option) to
// tune it:
//
//	ix, err := lht.New(d, lht.WithLeafCache(1024), lht.WithPolicy(lht.DefaultPolicy()))
func New(d DHT, opts ...Option) (*Index, error) {
	inner, err := ilht.New(d, ilht.BuildConfig(opts...))
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// InsertContext adds a record, replacing any record with the same key.
func (ix *Index) InsertContext(ctx context.Context, r Record) (Cost, error) {
	return ix.inner.InsertContext(ctx, r)
}

// BulkLoadContext populates an empty index with a whole dataset in one
// pass (about one DHT-put per resulting leaf), the standard construction
// optimization; ErrNotEmpty if the index already holds data. Leaves ship
// in batched parallel put rounds (WithBatchSize keys per batch); a
// failure mid-load surfaces as a *PartialLoadError once any leaf has
// landed.
func (ix *Index) BulkLoadContext(ctx context.Context, recs []Record) (Cost, error) {
	return ix.inner.BulkLoadContext(ctx, recs)
}

// DeleteContext removes the record with the given key, or returns
// ErrKeyNotFound.
func (ix *Index) DeleteContext(ctx context.Context, key float64) (Cost, error) {
	return ix.inner.DeleteContext(ctx, key)
}

// GetContext answers an exact-match query for one key.
func (ix *Index) GetContext(ctx context.Context, key float64) (Record, Cost, error) {
	return ix.inner.SearchContext(ctx, key)
}

// RangeContext returns every record with key in [lo, hi). A deadline
// bounds the whole forwarding recursion, and cancellation stops the
// parallel branch goroutines promptly.
func (ix *Index) RangeContext(ctx context.Context, lo, hi float64) ([]Record, Cost, error) {
	return ix.inner.RangeContext(ctx, lo, hi)
}

// MinContext returns the record with the smallest key (one DHT-lookup).
func (ix *Index) MinContext(ctx context.Context) (Record, Cost, error) {
	return ix.inner.MinContext(ctx)
}

// MaxContext returns the record with the largest key (one DHT-lookup).
func (ix *Index) MaxContext(ctx context.Context) (Record, Cost, error) {
	return ix.inner.MaxContext(ctx)
}

// ScanContext returns up to limit records with keys >= from in ascending
// order - the pagination primitive (resume with from = last returned
// key).
func (ix *Index) ScanContext(ctx context.Context, from float64, limit int) ([]Record, Cost, error) {
	return ix.inner.ScanContext(ctx, from, limit)
}

// ScrubReport is the typed outcome of a Scrub pass: leaves and records
// visited, DHT cost, repairs applied and invariant violations observed.
type ScrubReport = ilht.ScrubReport

// ScrubContext walks the reachable label space, verifying the tree's
// structural invariants and repairing torn splits/merges, orphaned
// buckets and misplaced records. A scrub of a consistent tree performs
// no writes; a repairing scrub counts as a writer for the concurrency
// contract.
func (ix *Index) ScrubContext(ctx context.Context) (*ScrubReport, error) {
	return ix.inner.Scrub(ctx)
}

// ClusterStatus is the membership view of a self-healing cluster
// substrate: per member its gossip state and incarnation, the client's
// breaker verdict, parked hinted-handoff backlogs, and known replica
// debt.
type ClusterStatus = dht.ClusterStatus

// MemberStatus is one member's row in a ClusterStatus.
type MemberStatus = dht.MemberStatus

// ClusterStatus reports the substrate cluster's membership view. It
// fails with ErrNoCluster when the substrate has no membership plane
// (anything but the tcpnet cluster client). Status traffic is free in
// the paper's cost model.
func (ix *Index) ClusterStatus(ctx context.Context) (ClusterStatus, error) {
	return ix.inner.ClusterStatus(ctx)
}

// Count returns the number of indexed records by walking all leaves (an
// inspection helper, not a constant-cost query).
func (ix *Index) Count() (int, error) { return ix.inner.Count() }

// Leaves returns the leaf buckets in key order (inspection helper).
func (ix *Index) Leaves() ([]*Bucket, error) { return ix.inner.Leaves() }

// CheckInvariants verifies the structural invariants of the stored tree;
// useful in tests of applications embedding LHT.
func (ix *Index) CheckInvariants() error { return ix.inner.CheckInvariants() }

// Metrics returns this client's cumulative counters: the paper's cost
// counters under Snapshot.Lookup, plus cache, retry, batch, repair, and
// per-operation-class latency groups. Use Metrics().Flat() for the
// one-level legacy names.
func (ix *Index) Metrics() Snapshot { return ix.inner.Metrics() }

// AlphaMean returns the measured average alpha over all splits (paper
// section 8.2) and the split count.
func (ix *Index) AlphaMean() (float64, int64) { return ix.inner.AlphaMean() }

// Config returns the index configuration.
func (ix *Index) Config() Config { return ix.inner.Config() }

// Background-context compatibility methods.
//
// Each method below is exactly its Context counterpart under
// context.Background(), kept so casual and historical callers stay
// source-compatible; the Context methods above are the canonical,
// documented API.

// Insert is InsertContext under context.Background().
func (ix *Index) Insert(r Record) (Cost, error) { return ix.InsertContext(context.Background(), r) }

// BulkLoad is BulkLoadContext under context.Background().
func (ix *Index) BulkLoad(recs []Record) (Cost, error) {
	return ix.BulkLoadContext(context.Background(), recs)
}

// Delete is DeleteContext under context.Background().
func (ix *Index) Delete(key float64) (Cost, error) {
	return ix.DeleteContext(context.Background(), key)
}

// Get is GetContext under context.Background().
func (ix *Index) Get(key float64) (Record, Cost, error) {
	return ix.GetContext(context.Background(), key)
}

// Range is RangeContext under context.Background().
func (ix *Index) Range(lo, hi float64) ([]Record, Cost, error) {
	return ix.RangeContext(context.Background(), lo, hi)
}

// Min is MinContext under context.Background().
func (ix *Index) Min() (Record, Cost, error) { return ix.MinContext(context.Background()) }

// Max is MaxContext under context.Background().
func (ix *Index) Max() (Record, Cost, error) { return ix.MaxContext(context.Background()) }

// Scan is ScanContext under context.Background().
func (ix *Index) Scan(from float64, limit int) ([]Record, Cost, error) {
	return ix.ScanContext(context.Background(), from, limit)
}

// Scrub is ScrubContext under context.Background().
func (ix *Index) Scrub() (*ScrubReport, error) { return ix.ScrubContext(context.Background()) }
