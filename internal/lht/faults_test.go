package lht

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lht/internal/chord"
	"lht/internal/dht"
	"lht/internal/record"
)

// faultDHT injects a substrate failure after a countdown of operations,
// modelling a transient network outage mid-operation.
type faultDHT struct {
	inner     dht.DHT
	remaining int
	tripped   bool
}

var errInjected = errors.New("injected substrate failure")

func (f *faultDHT) tick() error {
	if f.remaining <= 0 {
		f.tripped = true
		return errInjected
	}
	f.remaining--
	return nil
}

func (f *faultDHT) Get(ctx context.Context, key string) (dht.Value, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.Get(ctx, key)
}

func (f *faultDHT) Put(ctx context.Context, key string, v dht.Value) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.Put(ctx, key, v)
}

func (f *faultDHT) Take(ctx context.Context, key string) (dht.Value, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.Take(ctx, key)
}

func (f *faultDHT) Remove(ctx context.Context, key string) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.Remove(ctx, key)
}

func (f *faultDHT) Write(ctx context.Context, key string, v dht.Value) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.inner.Write(ctx, key, v)
}

// TestSubstrateFailuresPropagate injects a failure at every possible
// operation offset of a write-heavy workload and checks that the engine
// surfaces the injected error (wrapped, matchable) instead of panicking
// or mislabelling it as a data condition.
func TestSubstrateFailuresPropagate(t *testing.T) {
	// Find out how many substrate ops the workload needs when healthy.
	healthyOps := func() int {
		f := &faultDHT{inner: dht.NewLocal(), remaining: 1 << 30}
		ix, err := New(f, Config{SplitThreshold: 4, MergeThreshold: 3, Depth: 16})
		if err != nil {
			t.Fatal(err)
		}
		runWorkload(t, ix, false)
		return 1<<30 - f.remaining
	}()
	if healthyOps < 50 {
		t.Fatalf("workload too small: %d ops", healthyOps)
	}

	for cut := 2; cut < healthyOps; cut += 7 {
		f := &faultDHT{inner: dht.NewLocal(), remaining: cut}
		ix, err := New(f, Config{SplitThreshold: 4, MergeThreshold: 3, Depth: 16})
		if err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("cut %d: New failed with %v", cut, err)
			}
			continue
		}
		err = func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
			}()
			return runWorkloadErr(ix)
		}()
		if !f.tripped {
			continue // the fault never fired (workload variance)
		}
		if err == nil {
			t.Fatalf("cut %d: injected failure was swallowed", cut)
		}
		if !errors.Is(err, errInjected) {
			// The engine may legitimately wrap the failure in its own
			// error, but the chain must preserve the cause.
			t.Fatalf("cut %d: error chain lost the cause: %v", cut, err)
		}
	}
}

// TestChordFailMidRangeQuery drives a real (simulated) Chord substrate:
// after the index is built, the node holding one of the leaf buckets
// fails abruptly, and the next range query crossing that leaf must
// surface a *transient* substrate fault - retryable by a dht.Policy -
// rather than ErrKeyNotFound, a corrupt-tree report, or a panic. The
// partial cost the query did pay must remain internally consistent, and
// recovering the node must make the same query succeed again.
func TestChordFailMidRangeQuery(t *testing.T) {
	ring, err := chord.NewRing(12, chord.Config{Replicas: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(ring, Config{SplitThreshold: 4, MergeThreshold: 0, Depth: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := ix.Insert(record.Record{Key: (float64(i) + 0.5) / n}); err != nil {
			t.Fatal(err)
		}
	}
	leaves, err := ix.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) < 3 {
		t.Fatalf("want a multi-leaf tree, got %d leaves", len(leaves))
	}

	// Fail the node holding a mid-tree leaf bucket; with Replicas=1 no
	// copy survives, so the forwarding phase of a full-space range query
	// must hit the outage.
	key := leaves[len(leaves)/2].Label.Name().Key()
	ref, _, err := ring.Lookup(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	ring.Fail(ref.Addr)

	_, cost, err := ix.Range(0, 1)
	if err == nil {
		t.Fatal("range over a failed unreplicated holder succeeded")
	}
	if !dht.IsTransient(err) {
		t.Fatalf("fault not classified transient: %v", err)
	}
	if errors.Is(err, ErrKeyNotFound) || errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("node failure mislabelled as a data condition: %v", err)
	}
	if cost.Lookups < 1 {
		t.Fatalf("failed range reported no lookups: %+v", cost)
	}
	if cost.Steps > cost.Lookups {
		t.Fatalf("inconsistent cost on failure: Steps %d > Lookups %d", cost.Steps, cost.Lookups)
	}

	// The outage is transient in the full sense: recovery restores the
	// exact pre-fault result set.
	ring.Recover(ref.Addr)
	recs, _, err := ix.Range(0, 1)
	if err != nil {
		t.Fatalf("range after recovery: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("range after recovery returned %d records, want %d", len(recs), n)
	}
}

func runWorkload(t *testing.T, ix *Index, strict bool) {
	t.Helper()
	if err := runWorkloadErr(ix); err != nil && strict {
		t.Fatal(err)
	}
}

// runWorkloadErr drives a small mixed workload and returns the first
// error.
func runWorkloadErr(ix *Index) error {
	rng := rand.New(rand.NewSource(42))
	var keys []float64
	for i := 0; i < 30; i++ {
		k := rng.Float64()
		keys = append(keys, k)
		if _, err := ix.Insert(record.Record{Key: k}); err != nil {
			return err
		}
	}
	if _, _, err := ix.Range(0.2, 0.8); err != nil {
		return err
	}
	if _, _, err := ix.Min(); err != nil {
		return err
	}
	if _, _, err := ix.Max(); err != nil {
		return err
	}
	if _, _, err := ix.Scan(0.1, 10); err != nil {
		return err
	}
	for _, k := range keys[:10] {
		if _, err := ix.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// TestSortedInsertion is the adversarial insertion order: fully sorted
// keys sweep through the tree's leftmost frontier, repeatedly producing
// one-sided splits (the no-cascading rule of section 5 means each insert
// splits at most once, so the shape - unlike the intervals - can differ
// from a shuffled load's). Both orders must still produce a valid tree
// holding exactly the same records.
func TestSortedInsertion(t *testing.T) {
	build := func(perm []int) *Index {
		ix, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range perm {
			k := (float64(i) + 0.5) / 1000
			if _, err := ix.Insert(record.Record{Key: k}); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	sorted := make([]int, 1000)
	for i := range sorted {
		sorted[i] = i
	}
	shuffled := make([]int, 1000)
	copy(shuffled, sorted)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	a, b := build(sorted), build(shuffled)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	na, err := a.Count()
	if err != nil || na != 1000 {
		t.Fatalf("sorted Count = %d, %v", na, err)
	}
	nb, err := b.Count()
	if err != nil || nb != 1000 {
		t.Fatalf("shuffled Count = %d, %v", nb, err)
	}
	// Every record is findable in both, and the range results agree.
	for i := 0; i < 1000; i += 37 {
		k := (float64(i) + 0.5) / 1000
		if _, _, err := a.Search(k); err != nil {
			t.Fatalf("sorted Search(%v): %v", k, err)
		}
		if _, _, err := b.Search(k); err != nil {
			t.Fatalf("shuffled Search(%v): %v", k, err)
		}
	}
	ra, _, err := a.Range(0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := b.Range(0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) || len(ra) != 500 {
		t.Fatalf("range sizes differ: sorted %d, shuffled %d, want 500", len(ra), len(rb))
	}
}
