package workload

import (
	"testing"

	"lht/internal/stats"
)

func TestDistString(t *testing.T) {
	if Uniform.String() != "uniform" || Gaussian.String() != "gaussian" || Zipf.String() != "zipf" {
		t.Error("Dist names wrong")
	}
	if Dist(42).String() != "dist(42)" {
		t.Error("unknown dist name wrong")
	}
}

func TestKeysInDomain(t *testing.T) {
	for _, d := range []Dist{Uniform, Gaussian, Zipf} {
		g := NewGenerator(d, 1)
		for i := 0; i < 10000; i++ {
			k := g.Key()
			if !(k >= 0 && k < 1) {
				t.Fatalf("%v: key %v outside [0,1)", d, k)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := NewGenerator(Gaussian, 7).Records(100)
	b := NewGenerator(Gaussian, 7).Records(100)
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("seeded generators diverge at %d", i)
		}
	}
	c := NewGenerator(Gaussian, 8).Records(100)
	same := true
	for i := range a {
		if a[i].Key != c[i].Key {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestRecordsDistinct(t *testing.T) {
	recs := NewGenerator(Uniform, 3).Records(5000)
	if len(recs) != 5000 {
		t.Fatalf("got %d records", len(recs))
	}
	seen := make(map[float64]bool, len(recs))
	for _, r := range recs {
		if seen[r.Key] {
			t.Fatalf("duplicate key %v", r.Key)
		}
		seen[r.Key] = true
		if len(r.Value) == 0 {
			t.Fatal("empty payload")
		}
	}
}

func TestDistributionShapes(t *testing.T) {
	// Uniform: mean ~ 0.5, stddev ~ 1/sqrt(12) ~ 0.289.
	g := NewGenerator(Uniform, 4)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.Key()
	}
	if m := stats.Mean(xs); m < 0.48 || m > 0.52 {
		t.Errorf("uniform mean = %v", m)
	}
	if s := stats.StdDev(xs); s < 0.27 || s > 0.31 {
		t.Errorf("uniform stddev = %v", s)
	}

	// Gaussian: mean 0.5, stddev ~ 1/6 (slightly less after redraws).
	g = NewGenerator(Gaussian, 5)
	for i := range xs {
		xs[i] = g.Key()
	}
	if m := stats.Mean(xs); m < 0.48 || m > 0.52 {
		t.Errorf("gaussian mean = %v", m)
	}
	if s := stats.StdDev(xs); s < 0.15 || s > 0.18 {
		t.Errorf("gaussian stddev = %v", s)
	}

	// Zipf: heavily skewed toward 0.
	g = NewGenerator(Zipf, 6)
	below := 0
	for i := 0; i < 20000; i++ {
		if g.Key() < 0.01 {
			below++
		}
	}
	if below < 15000 {
		t.Errorf("zipf mass below 0.01 = %d/20000", below)
	}
}

func TestRangeQuery(t *testing.T) {
	g := NewGenerator(Uniform, 9)
	for i := 0; i < 1000; i++ {
		lo, hi := g.RangeQuery(0.2)
		if !(lo >= 0 && hi <= 1.0000001 && hi-lo > 0.19999) {
			t.Fatalf("bad range [%v, %v)", lo, hi)
		}
	}
}

func TestLookupKeys(t *testing.T) {
	keys := NewGenerator(Gaussian, 10).LookupKeys(1000)
	if len(keys) != 1000 {
		t.Fatal("wrong count")
	}
	// Lookup keys are uniform regardless of the data distribution.
	if m := stats.Mean(keys); m < 0.45 || m > 0.55 {
		t.Errorf("lookup key mean = %v", m)
	}
}
