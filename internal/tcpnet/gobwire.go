package tcpnet

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"lht/internal/dht"
)

// gobConn is the legacy wire format's connection state: a gob stream with
// one blocking request in flight at a time, kept only as the compat arm
// for the codec oracle (WireGob) — the A8 ablation and the cross-codec
// oracle tests pin the framed protocol's behaviour against it. New
// deployments use the framed binary protocol (mconn).
type gobConn struct {
	addr string
	dial ContextDialer // nil = plain net.Dialer

	mu   sync.Mutex
	gate redialGate // lazy-redial cooldown (breaker-backed when health is on)
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// deadline translates the context into a socket deadline: the context's
// deadline when set, otherwise none (the zero time clears any previous
// per-request deadline on a reused connection).
func deadline(ctx context.Context) time.Time {
	if d, ok := ctx.Deadline(); ok {
		return d
	}
	return time.Time{}
}

// roundTrip sends one request and reads its response, redialing a broken
// connection once. The context's deadline applies to the dial and to the
// encode/decode of this request; if the context is cancelled mid-flight
// the connection is closed, which unblocks the socket I/O. Cancellation
// is registered with context.AfterFunc rather than a per-call watcher
// goroutine, so a call on a never-cancelled context starts no goroutine
// and leaks nothing.
func (n *gobConn) roundTrip(ctx context.Context, req request) (response, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return response{}, err
	}
	var lastErr error
	// One reconnect attempt per call: a broken connection surfaces as a
	// decode/encode error on the first try.
	for attempt := 0; attempt < 2; attempt++ {
		if n.conn == nil {
			if err := n.gate.check(n.addr); err != nil {
				return response{}, err
			}
			conn, err := dialWith(ctx, n.dial, n.addr)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return response{}, cerr
				}
				err = dht.MarkTransient(err)
				n.gate.failure(err)
				return response{}, err
			}
			n.gate.success()
			n.conn = conn
			n.enc = gob.NewEncoder(conn)
			n.dec = gob.NewDecoder(conn)
		}
		_ = n.conn.SetDeadline(deadline(ctx))

		// Cancellation support: closing the conn unblocks gob I/O.
		conn := n.conn
		stop := context.AfterFunc(ctx, func() { _ = conn.Close() })

		var resp response
		err := n.enc.Encode(req)
		if err == nil {
			err = n.dec.Decode(&resp)
		}
		stop()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		_ = n.conn.Close()
		n.conn = nil
		if cerr := ctx.Err(); cerr != nil {
			return response{}, cerr
		}
	}
	return response{}, dht.MarkTransient(
		fmt.Errorf("tcpnet: node %q unreachable: %w", n.addr, lastErr))
}

// close tears the connection down.
func (n *gobConn) close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.conn == nil {
		return nil
	}
	err := n.conn.Close()
	n.conn = nil
	return err
}

// batchRoundTrip performs one batched request and validates the reply
// shape, so callers can index replies by slot unconditionally.
func (n *gobConn) batchRoundTrip(ctx context.Context, req request, want int) ([]batchReply, error) {
	resp, err := n.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("tcpnet: server error: %s", resp.Err)
	}
	if len(resp.Batch) != want {
		return nil, fmt.Errorf("tcpnet: batch reply has %d slots, want %d", len(resp.Batch), want)
	}
	return resp.Batch, nil
}
