package lht_test

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"lht"
)

func TestPublicAPIQuickstart(t *testing.T) {
	ix, err := lht.New(lht.NewLocalDHT(), lht.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(lht.Record{Key: 0.42, Value: []byte("answer")}); err != nil {
		t.Fatal(err)
	}
	rec, cost, err := ix.Get(0.42)
	if err != nil || string(rec.Value) != "answer" {
		t.Fatalf("Get = %v, %v", rec, err)
	}
	if cost.Lookups == 0 {
		t.Error("Get should cost lookups")
	}
	if _, _, err := ix.Get(0.99); !errors.Is(err, lht.ErrKeyNotFound) {
		t.Fatalf("Get absent = %v", err)
	}
	if _, err := ix.Delete(0.42); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Min(); !errors.Is(err, lht.ErrEmpty) {
		t.Fatalf("Min on empty = %v", err)
	}
	if _, _, err := ix.Range(0.5, 0.4); !errors.Is(err, lht.ErrBadRange) {
		t.Fatalf("bad range = %v", err)
	}
}

func TestPublicAPIOverChord(t *testing.T) {
	ring, err := lht.NewChordDHT(8, lht.ChordConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := lht.New(ring, lht.Config{SplitThreshold: 8, MergeThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	keys := make([]float64, 200)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(lht.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(keys)
	if r, _, err := ix.Min(); err != nil || r.Key != keys[0] {
		t.Fatalf("Min = %v, %v", r, err)
	}
	if r, _, err := ix.Max(); err != nil || r.Key != keys[len(keys)-1] {
		t.Fatalf("Max = %v, %v", r, err)
	}
	recs, _, err := ix.Range(0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, k := range keys {
		if k >= 0.25 && k < 0.75 {
			want++
		}
	}
	if len(recs) != want {
		t.Fatalf("Range = %d records, want %d", len(recs), want)
	}
	if n, err := ix.Count(); err != nil || n != len(keys) {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := ix.Metrics().Flat()
	if s.Splits == 0 || s.Lookups == 0 {
		t.Errorf("metrics look dead: %+v", s)
	}
	if mean, n := ix.AlphaMean(); n == 0 || mean <= 0 {
		t.Errorf("AlphaMean = %v, %d", mean, n)
	}
	leaves, err := ix.Leaves()
	if err != nil || len(leaves) < 2 {
		t.Fatalf("Leaves = %d, %v", len(leaves), err)
	}
	if ix.Config().SplitThreshold != 8 {
		t.Error("Config accessor broken")
	}
}

func TestPublicAPIOverKademlia(t *testing.T) {
	nw, err := lht.NewKademliaDHT(8, lht.KademliaConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := lht.New(nw, lht.Config{SplitThreshold: 8, MergeThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := ix.Insert(lht.Record{Key: float64(i) / 128}); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, err := ix.Range(0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty range result")
	}
}

func TestRegisterGobTypes(t *testing.T) {
	// Double registration must not panic (gob panics on conflicting
	// registrations only).
	lht.RegisterGobTypes()
	lht.RegisterGobTypes()
}
