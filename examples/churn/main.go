// Churn demonstrates the paper's central argument end to end: an over-DHT
// index pays nothing for peer churn, because membership is the
// substrate's problem. The example runs an LHT over a replicated Chord
// ring while nodes join, leave gracefully, and crash outright; the index
// keeps answering queries and its maintenance counters show that it only
// ever paid for its own tree growth.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lht"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ring, err := lht.NewChordDHT(12, lht.ChordConfig{Seed: 5, Replicas: 3})
	if err != nil {
		return err
	}
	ix, err := lht.New(ring, lht.Config{SplitThreshold: 20, MergeThreshold: 10, Depth: 20})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(5))
	var inserted []float64
	next := 12 // next node number to join
	crashed := ""

	for round := 1; round <= 8; round++ {
		// Application load: 150 inserts per round.
		for i := 0; i < 150; i++ {
			k := rng.Float64()
			if _, err := ix.Insert(lht.Record{Key: k}); err != nil {
				return fmt.Errorf("round %d insert: %w", round, err)
			}
			inserted = append(inserted, k)
		}

		// Churn: a join, a graceful leave, and every other round an
		// abrupt crash (recovered one round later, like a rebooting
		// peer).
		addr := fmt.Sprintf("n%d", next)
		next++
		if err := ring.AddNode(addr); err != nil {
			return err
		}
		members := ring.NodeAddrs()
		if err := ring.RemoveNode(members[rng.Intn(len(members))], true); err != nil {
			return err
		}
		if crashed != "" {
			ring.Recover(crashed)
			crashed = ""
		} else if round%2 == 0 {
			members = ring.NodeAddrs()
			crashed = members[rng.Intn(len(members))]
			ring.Fail(crashed)
		}
		ring.Stabilize(3)

		// Spot-check queries after the churn.
		misses := 0
		for i := 0; i < 50; i++ {
			k := inserted[rng.Intn(len(inserted))]
			if _, _, err := ix.Get(k); err != nil {
				misses++
			}
		}
		fmt.Printf("round %d: %2d live nodes, %4d records, spot-check misses: %d/50\n",
			round, len(ring.NodeAddrs()), len(inserted), misses)
	}

	if crashed != "" {
		ring.Recover(crashed)
		ring.Stabilize(3)
	}

	// The punchline: the index's maintenance counters contain only its
	// own tree growth - churn appears nowhere, because the DHT absorbed
	// it (section 8.2: "LHT has no need of periodical maintenance...
	// this piece of work is left to and well done by the underlying
	// DHT").
	s := ix.Metrics().Flat()
	fmt.Printf("\nindex maintenance across all churn: %d splits, %d merges, %d maintenance lookups\n",
		s.Splits, s.Merges, s.MaintLookups)
	fmt.Printf("(every one of them caused by data growth, none by the %d membership changes)\n", 8*2+4)

	recs, _, err := ix.Range(0, 1)
	if err != nil {
		return err
	}
	fmt.Printf("final full scan: %d of %d records survive churn with 3-way replication\n",
		len(recs), len(inserted))
	return nil
}
