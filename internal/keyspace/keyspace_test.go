package keyspace

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lht/internal/bitlabel"
)

func TestCheckKey(t *testing.T) {
	for _, ok := range []float64{0, 0.5, 0.999999, 1e-12} {
		if err := CheckKey(ok); err != nil {
			t.Errorf("CheckKey(%v) = %v", ok, err)
		}
	}
	for _, bad := range []float64{-0.1, 1, 1.5, math.NaN(), math.Inf(1)} {
		if err := CheckKey(bad); !errors.Is(err, ErrKeyRange) {
			t.Errorf("CheckKey(%v) = %v, want ErrKeyRange", bad, err)
		}
	}
}

func TestMuPaperExample(t *testing.T) {
	// Section 5: mu(0.4, 6) = #00110 - root prefix #0 plus the binary
	// expansion 0110 of 0.4 to 4 bits. (The paper says "binary string
	// #00110 (with length 6)" counting the '#'.)
	mu, err := Mu(0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := mu.String(); got != "#00110" {
		t.Errorf("Mu(0.4, 5) = %s, want #00110", got)
	}
	// Section 5 lookup example: mu(0.9, 14) = #01110011001100.
	mu, err = Mu(0.9, 14)
	if err != nil {
		t.Fatal(err)
	}
	if got := mu.String(); got != "#01110011001100" {
		t.Errorf("Mu(0.9, 14) = %s, want #01110011001100", got)
	}
}

func TestMuErrors(t *testing.T) {
	if _, err := Mu(1.0, 10); !errors.Is(err, ErrKeyRange) {
		t.Errorf("Mu(1.0) = %v, want ErrKeyRange", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Mu with depth 0 should panic")
		}
	}()
	_, _ = Mu(0.5, 0)
}

func TestIntervalOf(t *testing.T) {
	cases := []struct {
		label  string
		lo, hi float64
	}{
		{"#", 0, 1},
		{"#0", 0, 1},
		{"#00", 0, 0.5},
		{"#01", 0.5, 1},
		{"#001", 0.25, 0.5}, // Fig. 2: lambda(0.4) = #001
		{"#010", 0.5, 0.75},
		{"#0111", 0.875, 1},
		{"#0000", 0, 0.125},
	}
	for _, tc := range cases {
		iv := IntervalOf(bitlabel.MustParse(tc.label))
		if iv.Lo != tc.lo || iv.Hi != tc.hi {
			t.Errorf("IntervalOf(%s) = %v, want [%g, %g)", tc.label, iv, tc.lo, tc.hi)
		}
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{Lo: 0.2, Hi: 0.6}
	b := Interval{Lo: 0.5, Hi: 0.9}
	c := Interval{Lo: 0.6, Hi: 0.7}

	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("touching intervals are half-open and do not overlap")
	}
	if got := a.Intersect(b); got != (Interval{Lo: 0.5, Hi: 0.6}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("disjoint Intersect should be empty, got %v", got)
	}
	if !a.Contains(0.2) || a.Contains(0.6) {
		t.Error("Contains must be half-open")
	}
	if !(Interval{Lo: 0.3, Hi: 0.4}).ContainedIn(a) {
		t.Error("ContainedIn failed")
	}
	if a.ContainedIn(b) {
		t.Error("a is not contained in b")
	}
	if got := a.Width(); math.Abs(got-0.4) > 1e-15 {
		t.Errorf("Width = %v", got)
	}
	if (Interval{Lo: 1, Hi: 1}).Width() != 0 {
		t.Error("empty width should be 0")
	}
	if got := a.String(); got != "[0.2, 0.6)" {
		t.Errorf("String = %q", got)
	}
}

// TestMuIntervalConsistency is the invariant the lookup algorithm depends
// on: every prefix of mu(delta, D) covers delta.
func TestMuIntervalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		delta := rng.Float64()
		depth := 1 + rng.Intn(40)
		mu, err := Mu(delta, depth)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= mu.Len(); k++ {
			if !IntervalOf(mu.Prefix(k)).Contains(delta) {
				t.Fatalf("prefix %s of mu(%v, %d) does not contain the key", mu.Prefix(k), delta, depth)
			}
		}
	}
}

// TestMuDyadicBoundaries exercises keys exactly on split points, where
// float comparisons are most delicate.
func TestMuDyadicBoundaries(t *testing.T) {
	for depth := 2; depth <= 20; depth++ {
		for num := 0; num < 16; num++ {
			delta := float64(num) / 16
			mu, err := Mu(delta, depth)
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k <= mu.Len(); k++ {
				if !IntervalOf(mu.Prefix(k)).Contains(delta) {
					t.Fatalf("dyadic %v: prefix %s misses", delta, mu.Prefix(k))
				}
			}
		}
	}
}

func TestRangeLCA(t *testing.T) {
	cases := []struct {
		lo, hi float64
		depth  int
		want   string
	}{
		{0.2, 0.6, 20, "#0"},   // section 6.2 example: LCA = #0
		{0.1, 0.2, 20, "#000"}, // inside [0, 0.25)
		{0.5, 1.0, 20, "#01"},  // the right half exactly
		{0.0, 1.0, 20, "#0"},   // the whole space
		{0.26, 0.49, 20, "#001"},
		{0.5, 0.5078125, 3, "#010"}, // capped by maxDepth
	}
	for _, tc := range cases {
		got := RangeLCA(Interval{Lo: tc.lo, Hi: tc.hi}, tc.depth)
		if got.String() != tc.want {
			t.Errorf("RangeLCA([%g, %g), %d) = %s, want %s", tc.lo, tc.hi, tc.depth, got, tc.want)
		}
	}
}

// Property: RangeLCA covers the range and, unless capped by depth, is the
// lowest such node (its children's median splits the range).
func TestQuickRangeLCA(t *testing.T) {
	prop := func(a, b float64) bool {
		lo, hi := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		r := Interval{Lo: lo, Hi: hi}
		lca := RangeLCA(r, 30)
		iv := IntervalOf(lca)
		if !r.ContainedIn(iv) {
			return false
		}
		if lca.Len() < 30 {
			mid := iv.Lo + (iv.Hi-iv.Lo)/2
			return r.Lo < mid && r.Hi > mid
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
