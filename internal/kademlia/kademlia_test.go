package kademlia

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"lht/internal/dht"
	"lht/internal/hashring"
)

func TestBucketIndex(t *testing.T) {
	if bucketIndex(0, 0) != -1 {
		t.Error("self must map to -1")
	}
	if bucketIndex(0, 1) != 0 {
		t.Error("distance 1 -> bucket 0")
	}
	if bucketIndex(0, 1<<63) != 63 {
		t.Error("top bit -> bucket 63")
	}
	if bucketIndex(0b1010, 0b1000) != 1 {
		t.Errorf("bucketIndex = %d, want 1", bucketIndex(0b1010, 0b1000))
	}
}

func TestTableObserveAndClosest(t *testing.T) {
	self := Ref{ID: 0, Addr: "self"}
	tbl := newTable(self, 2)
	refs := []Ref{
		{ID: 1, Addr: "a"}, {ID: 2, Addr: "b"}, {ID: 3, Addr: "c"},
		{ID: 1 << 40, Addr: "d"},
	}
	for _, r := range refs {
		tbl.observe(r)
	}
	// Bucket 1 holds IDs 2 and 3 (k=2 full); ID 1 is alone in bucket 0;
	// d in bucket 40.
	if tbl.size() != 4 {
		t.Fatalf("size = %d", tbl.size())
	}
	// A full bucket drops newcomers.
	tbl.observe(Ref{ID: 2 ^ 1, Addr: "e"}) // also bucket 1
	if tbl.size() != 4 {
		t.Fatalf("full bucket accepted newcomer: size = %d", tbl.size())
	}
	// Re-observing an existing contact refreshes, not duplicates.
	tbl.observe(refs[0])
	if tbl.size() != 4 {
		t.Fatalf("re-observe duplicated: size = %d", tbl.size())
	}
	got := tbl.closest(0, 3)
	if len(got) != 3 || got[0].Addr != "self" || got[1].Addr != "a" {
		t.Fatalf("closest = %v", got)
	}
	tbl.remove("a")
	if tbl.size() != 3 {
		t.Fatalf("remove failed: size = %d", tbl.size())
	}
}

func TestNetworkPutGet(t *testing.T) {
	nw, err := NewNetwork(24, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := nw.Put(context.Background(), key, i); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, err := nw.Get(context.Background(), key)
		if err != nil || v.(int) != i {
			t.Fatalf("Get(%s) = %v, %v", key, v, err)
		}
	}
	if _, err := nw.Get(context.Background(), "absent"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("Get absent = %v", err)
	}
	// K-way replication: each key stored on K=8 nodes.
	if total := nw.TotalKeys(); total != 300*8 {
		t.Errorf("TotalKeys = %d, want %d", total, 300*8)
	}
}

func TestTakeRemoveWrite(t *testing.T) {
	nw, err := NewNetwork(10, Config{Seed: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Put(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	if err := nw.Write(context.Background(), "a", 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := nw.Get(context.Background(), "a"); v.(int) != 2 {
		t.Fatal("Write did not propagate to replicas")
	}
	if err := nw.Write(context.Background(), "missing", 0); !errors.Is(err, dht.ErrNotFound) {
		t.Fatalf("Write missing = %v", err)
	}
	v, err := nw.Take(context.Background(), "a")
	if err != nil || v.(int) != 2 {
		t.Fatalf("Take = %v, %v", v, err)
	}
	if _, err := nw.Get(context.Background(), "a"); !errors.Is(err, dht.ErrNotFound) {
		t.Fatal("Take left replicas behind")
	}
	if err := nw.Put(context.Background(), "b", 3); err != nil {
		t.Fatal(err)
	}
	if err := nw.Remove(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if err := nw.Remove(context.Background(), "b"); err != nil {
		t.Fatal("Remove of absent key must not error")
	}
}

func TestLookupMessagesLogarithmic(t *testing.T) {
	nw, err := NewNetwork(64, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var total int
	const queries = 100
	for i := 0; i < queries; i++ {
		refs, hops, err := nw.Lookup(context.Background(), fmt.Sprintf("q-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) == 0 {
			t.Fatal("no nodes found")
		}
		total += hops
	}
	mean := float64(total) / queries
	// Iterative lookups query O(alpha * log N) contacts; fail if this
	// degrades toward N.
	if mean > 40 {
		t.Errorf("mean messages per lookup = %v for 64 nodes", mean)
	}
}

func TestLookupFindsTrueClosest(t *testing.T) {
	nw, err := NewNetwork(32, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("c-%d", i)
		target := hashring.HashKey(key)
		refs, _, err := nw.Lookup(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		// Compute the true closest node by brute force.
		var best Ref
		bestD := ^uint64(0)
		nw.mu.Lock()
		for _, n := range nw.nodes {
			if d := xorDist(n.ref.ID, target); d < bestD {
				bestD, best = d, n.ref
			}
		}
		nw.mu.Unlock()
		if refs[0].Addr != best.Addr {
			t.Fatalf("Lookup(%s) closest = %v, want %v", key, refs[0], best)
		}
	}
}

func TestFailureTolerance(t *testing.T) {
	nw, err := NewNetwork(20, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := nw.Put(context.Background(), fmt.Sprintf("f-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	nw.Fail("k3")
	nw.Fail("k7")
	nw.Fail("k11")
	// K=8 replication: every key still readable with 3/20 nodes down.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("f-%d", i)
		v, err := nw.Get(context.Background(), key)
		if err != nil || v.(int) != i {
			t.Fatalf("Get(%s) after failures = %v, %v", key, v, err)
		}
	}
	nw.Recover("k3")
	if _, err := nw.Get(context.Background(), "f-0"); err != nil {
		t.Fatal(err)
	}
}

func TestJoinAfterData(t *testing.T) {
	nw, err := NewNetwork(8, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := nw.Put(context.Background(), fmt.Sprintf("j-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 8; i < 16; i++ {
		if err := nw.AddNode(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("j-%d", i)
		v, err := nw.Get(context.Background(), key)
		if err != nil || v.(int) != i {
			t.Fatalf("Get(%s) after joins = %v, %v", key, v, err)
		}
	}
	if err := nw.AddNode("k8"); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate AddNode = %v", err)
	}
}

func TestAllNodesDown(t *testing.T) {
	nw, err := NewNetwork(2, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nw.Fail("k0")
	nw.Fail("k1")
	if err := nw.Put(context.Background(), "x", 1); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Put with all down = %v", err)
	}
}

func TestNewNetworkValidates(t *testing.T) {
	if _, err := NewNetwork(0, Config{}); err == nil {
		t.Error("NewNetwork(0) should fail")
	}
}
