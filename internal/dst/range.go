package dst

import (
	"errors"
	"fmt"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/record"
)

// Range answers [lo, hi) the DST way: the initiator locally decomposes
// the range into its canonical segments (the minimal set of maximal
// dyadic segments covering it, at most 2 per level - data-independent)
// and probes all segment nodes in parallel. An absent node means an
// empty segment; a saturated node holds no replicas, so the query
// descends to its children. Latency is one round plus the deepest
// descent - the "parallel lookups to reduce query latency" of the
// paper's related-work discussion - while bandwidth pays for every probe,
// hit or miss.
func (ix *Index) Range(lo, hi float64) ([]record.Record, Cost, error) {
	var cost Cost
	if err := keyspace.CheckKey(lo); err != nil {
		return nil, cost, fmt.Errorf("%w: lo: %v", ErrBadRange, err)
	}
	if !(hi > lo && hi <= 1) {
		return nil, cost, fmt.Errorf("%w: [%v, %v)", ErrBadRange, lo, hi)
	}
	r := keyspace.Interval{Lo: lo, Hi: hi}
	segments := canonicalSegments(r, ix.cfg.Depth)

	var out []record.Record
	maxDepth := 0
	for _, seg := range segments {
		want := keyspace.IntervalOf(seg).Intersect(r)
		d, err := ix.querySegment(seg, want, &out, &cost)
		if err != nil {
			return nil, cost, err
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	cost.Steps = maxDepth
	return out, cost, nil
}

// canonicalSegments computes the segment-tree decomposition of r: the
// maximal dyadic segments fully inside r, found by local recursion (no
// DHT traffic).
func canonicalSegments(r keyspace.Interval, maxDepth int) []bitlabel.Label {
	var out []bitlabel.Label
	var walk func(label bitlabel.Label)
	walk = func(label bitlabel.Label) {
		iv := keyspace.IntervalOf(label)
		if !iv.Overlaps(r) {
			return
		}
		if iv.ContainedIn(r) || label.Len() >= maxDepth {
			out = append(out, label)
			return
		}
		walk(label.Left())
		walk(label.Right())
	}
	walk(bitlabel.TreeRoot)
	return out
}

// querySegment probes one canonical segment node and collects the records
// inside want, descending below saturated nodes. It returns the length of
// its dependent lookup chain.
func (ix *Index) querySegment(label bitlabel.Label, want keyspace.Interval, out *[]record.Record, cost *Cost) (int, error) {
	if want.Empty() {
		return 0, nil
	}
	n, err := ix.getNode(label.Key(), cost)
	if errors.Is(err, dht.ErrNotFound) {
		return 1, nil // empty segment
	}
	if err != nil {
		return 1, fmt.Errorf("dst: segment %s: %w", label, err)
	}
	if !n.Saturated {
		*out = record.FilterRange(*out, n.Records, want.Lo, want.Hi)
		return 1, nil
	}
	// Saturated: the children hold complete replicas of their halves;
	// probe them in parallel.
	maxChild := 0
	for _, child := range []bitlabel.Label{label.Left(), label.Right()} {
		sub := keyspace.IntervalOf(child).Intersect(want)
		if sub.Empty() {
			continue
		}
		d, err := ix.querySegment(child, sub, out, cost)
		if err != nil {
			return 1 + d, err
		}
		if d > maxChild {
			maxChild = d
		}
	}
	return 1 + maxChild, nil
}

// Count returns the number of indexed records via a full-space range
// query (testing helper; charged like any other query).
func (ix *Index) Count() (int, error) {
	recs, _, err := ix.Range(0, 1)
	if err != nil {
		return 0, err
	}
	return len(recs), nil
}

// CheckInvariants verifies DST's replication invariants over the stored
// tree, using uncharged reads: saturated nodes hold nothing; every
// non-saturated node's replica set equals the union of the ground-truth
// (depth-D) records under it; all records lie inside their node's
// segment. It is meant for tests.
func (ix *Index) CheckInvariants() error {
	var walk func(label bitlabel.Label) (map[float64]bool, error)
	walk = func(label bitlabel.Label) (map[float64]bool, error) {
		n, err := ix.peekNode(label)
		if errors.Is(err, dht.ErrNotFound) {
			return nil, nil // empty segment
		}
		if err != nil {
			return nil, err
		}
		iv := n.Interval()
		for _, r := range n.Records {
			if !iv.Contains(r.Key) {
				return nil, fmt.Errorf("%w: record %g outside %s", ErrCorrupt, r.Key, n)
			}
		}
		if label.Len() == ix.cfg.Depth {
			set := make(map[float64]bool, len(n.Records))
			for _, r := range n.Records {
				set[r.Key] = true
			}
			return set, nil
		}
		left, err := walk(label.Left())
		if err != nil {
			return nil, err
		}
		right, err := walk(label.Right())
		if err != nil {
			return nil, err
		}
		union := left
		if union == nil {
			union = make(map[float64]bool)
		}
		for k := range right {
			union[k] = true
		}
		if n.Saturated {
			if len(n.Records) != 0 {
				return nil, fmt.Errorf("%w: saturated node %s holds records", ErrCorrupt, n)
			}
			return union, nil
		}
		if len(n.Records) != len(union) {
			return nil, fmt.Errorf("%w: node %s replicates %d of %d ground-truth records",
				ErrCorrupt, n, len(n.Records), len(union))
		}
		for _, r := range n.Records {
			if !union[r.Key] {
				return nil, fmt.Errorf("%w: node %s replicates phantom record %g", ErrCorrupt, n, r.Key)
			}
		}
		return union, nil
	}
	_, err := walk(bitlabel.TreeRoot)
	return err
}
