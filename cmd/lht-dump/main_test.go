package main

import (
	"context"
	"net"
	"strings"
	"testing"

	"lht"
	"lht/internal/tcpnet"
)

func startClusterWithData(t *testing.T) string {
	t.Helper()
	addrs := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := tcpnet.NewServer()
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	nodes := strings.Join(addrs, ",")
	lht.RegisterGobTypes()
	client, err := tcpnet.DialContext(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	ix, err := lht.New(client, lht.Config{SplitThreshold: 8, MergeThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := ix.Insert(lht.Record{Key: float64(i) / 300, Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

func TestDumpSummary(t *testing.T) {
	nodes := startClusterWithData(t)
	var out strings.Builder
	if err := run([]string{"-nodes", nodes, "-theta", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"leaves:", "records:  300", "depth histogram:"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestDumpTree(t *testing.T) {
	nodes := startClusterWithData(t)
	var out strings.Builder
	if err := run([]string{"-nodes", nodes, "-theta", "8", "-tree"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "#0") || !strings.Contains(s, "records") {
		t.Errorf("tree output malformed:\n%s", s)
	}
	// Leaves must appear in key order: first line covers 0.000000.
	first := strings.SplitN(s, "\n", 2)[0]
	if !strings.Contains(first, "[0.000000,") {
		t.Errorf("first leaf should start at 0: %q", first)
	}
}

func TestDumpErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nodes", "127.0.0.1:1"}, &out); err == nil {
		t.Error("dead cluster should fail")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
	nodes := startClusterWithData(t)
	if err := run([]string{"-nodes", nodes, "extra"}, &out); err == nil {
		t.Error("extra args should fail")
	}
}
