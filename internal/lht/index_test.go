package lht

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

func newTestIndex(t *testing.T, cfg Config) (*Index, *dht.Local) {
	t.Helper()
	d := dht.NewLocal()
	ix, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix, d
}

func smallConfig() Config {
	return Config{SplitThreshold: 8, MergeThreshold: 4, Depth: 20}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(dht.NewLocal(), Config{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("New with zero config = %v, want ErrConfig", err)
	}
	bad := []Config{
		{SplitThreshold: 2, MergeThreshold: 1, Depth: 20},
		{SplitThreshold: 100, MergeThreshold: 200, Depth: 20},
		{SplitThreshold: 100, MergeThreshold: -1, Depth: 20},
		{SplitThreshold: 100, MergeThreshold: 50, Depth: 1},
		{SplitThreshold: 100, MergeThreshold: 50, Depth: 63},
	}
	for _, cfg := range bad {
		if _, err := New(dht.NewLocal(), cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("New(%+v) = %v, want ErrConfig", cfg, err)
		}
	}
}

func TestBootstrap(t *testing.T) {
	ix, d := newTestIndex(t, DefaultConfig())
	v, err := d.Get(context.Background(), "#")
	if err != nil {
		t.Fatalf("bootstrap bucket missing: %v", err)
	}
	b := v.(*Bucket)
	if b.Label.String() != "#0" || len(b.Records) != 0 {
		t.Fatalf("bootstrap bucket = %v", b)
	}
	if _, _, err := ix.Min(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Min on empty = %v, want ErrEmpty", err)
	}
	if _, _, err := ix.Max(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Max on empty = %v, want ErrEmpty", err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A second client attaching to the same substrate must not reset it.
	if _, err := ix.Insert(record.Record{Key: 0.5}); err != nil {
		t.Fatal(err)
	}
	ix2, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix2.Search(0.5); err != nil {
		t.Fatalf("second client lost data: %v", err)
	}
}

func TestInsertSearchDelete(t *testing.T) {
	ix, _ := newTestIndex(t, smallConfig())
	keys := []float64{0.1, 0.9, 0.5, 0.25, 0.75, 0.3333}
	for i, k := range keys {
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte{byte(i)}}); err != nil {
			t.Fatalf("Insert(%v): %v", k, err)
		}
	}
	for i, k := range keys {
		r, cost, err := ix.Search(k)
		if err != nil {
			t.Fatalf("Search(%v): %v", k, err)
		}
		if r.Key != k || r.Value[0] != byte(i) {
			t.Fatalf("Search(%v) = %v", k, r)
		}
		if cost.Lookups < 1 {
			t.Fatalf("Search cost %+v", cost)
		}
	}
	if _, _, err := ix.Search(0.123456); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Search absent = %v", err)
	}
	if _, err := ix.Delete(0.5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search(0.5); !errors.Is(err, ErrKeyNotFound) {
		t.Fatal("deleted key still found")
	}
	if _, err := ix.Delete(0.5); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Delete absent = %v", err)
	}
	if n, err := ix.Count(); err != nil || n != len(keys)-1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestInsertReplacesSameKey(t *testing.T) {
	ix, _ := newTestIndex(t, smallConfig())
	if _, err := ix.Insert(record.Record{Key: 0.4, Value: []byte("old")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(record.Record{Key: 0.4, Value: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	r, _, err := ix.Search(0.4)
	if err != nil || string(r.Value) != "new" {
		t.Fatalf("Search = %v, %v", r, err)
	}
	if n, _ := ix.Count(); n != 1 {
		t.Fatalf("Count = %d, want 1 (replace, not duplicate)", n)
	}
}

func TestInsertRejectsBadKey(t *testing.T) {
	ix, _ := newTestIndex(t, smallConfig())
	for _, k := range []float64{-0.5, 1.0, 2.5} {
		if _, err := ix.Insert(record.Record{Key: k}); err == nil {
			t.Errorf("Insert(%v) should fail", k)
		}
	}
}

// TestSplitKeepsOneHalfLocal verifies the engine realizes Theorem 2: after
// a split, the bucket stored under the original DHT key is one of the two
// halves (it never moved), and the other half sits under the old label.
func TestSplitKeepsOneHalfLocal(t *testing.T) {
	ix, d := newTestIndex(t, smallConfig())
	// Fill the root leaf to the threshold: weight > 8 at 8 records.
	for i := 0; i < 8; i++ {
		if _, err := ix.Insert(record.Record{Key: float64(i) / 8}); err != nil {
			t.Fatal(err)
		}
	}
	s := ix.Metrics().Flat()
	if s.Splits != 1 {
		t.Fatalf("Splits = %d, want 1", s.Splits)
	}
	// The original leaf #0 was stored under "#". After splitting, #00
	// stays under "#" (f_n(#00) = #) and #01 is pushed to key "#0".
	v, err := d.Get(context.Background(), "#")
	if err != nil {
		t.Fatal(err)
	}
	local := v.(*Bucket)
	if local.Label.String() != "#00" {
		t.Fatalf("local half = %s, want #00", local.Label)
	}
	v, err = d.Get(context.Background(), "#0")
	if err != nil {
		t.Fatal(err)
	}
	remote := v.(*Bucket)
	if remote.Label.String() != "#01" {
		t.Fatalf("remote half = %s, want #01", remote.Label)
	}
	if len(local.Records)+len(remote.Records) != 8 {
		t.Fatalf("records lost in split: %d + %d", len(local.Records), len(remote.Records))
	}
	for _, r := range local.Records {
		if r.Key >= 0.5 {
			t.Errorf("record %v in left half", r.Key)
		}
	}
	for _, r := range remote.Records {
		if r.Key < 0.5 {
			t.Errorf("record %v in right half", r.Key)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthInvariants(t *testing.T) {
	for _, theta := range []int{8, 16, 40} {
		theta := theta
		t.Run(fmt.Sprintf("theta=%d", theta), func(t *testing.T) {
			ix, _ := newTestIndex(t, Config{SplitThreshold: theta, MergeThreshold: theta / 2, Depth: 24})
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 2000; i++ {
				if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
					t.Fatal(err)
				}
				if i%500 == 499 {
					if err := ix.CheckInvariants(); err != nil {
						t.Fatalf("after %d inserts: %v", i+1, err)
					}
				}
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if n, err := ix.Count(); err != nil || n != 2000 {
				t.Fatalf("Count = %d, %v", n, err)
			}
			if ov := ix.Overflows(); ov != 0 {
				t.Fatalf("Overflows = %d", ov)
			}
		})
	}
}

func TestSkewedGrowthAndOverflow(t *testing.T) {
	// All keys in a tiny interval force the tree to its depth limit; the
	// engine must keep working (oversized boundary leaf) and report
	// overflows.
	ix, _ := newTestIndex(t, Config{SplitThreshold: 4, MergeThreshold: 0, Depth: 6})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64() / 1024}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ix.Overflows() == 0 {
		t.Fatal("expected overflows at depth limit")
	}
	if n, err := ix.Count(); err != nil || n != 200 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	// Every record must still be findable.
	rng = rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		k := rng.Float64() / 1024
		if _, _, err := ix.Search(k); err != nil {
			t.Fatalf("Search(%v): %v", k, err)
		}
	}
}

func TestDeleteTriggersMerges(t *testing.T) {
	ix, _ := newTestIndex(t, Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20})
	rng := rand.New(rand.NewSource(3))
	keys := make([]float64, 400)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete in random order and keep the structure consistent.
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if _, err := ix.Delete(k); err != nil {
			t.Fatalf("Delete(%v): %v", k, err)
		}
		if i%100 == 99 {
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if n, err := ix.Count(); err != nil || n != 0 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if s := ix.Metrics().Flat(); s.Merges == 0 {
		t.Error("expected merges during mass deletion")
	}
	// The index must remain fully usable afterwards.
	if _, err := ix.Insert(record.Record{Key: 0.5}); err != nil {
		t.Fatal(err)
	}
	if r, _, err := ix.Min(); err != nil || r.Key != 0.5 {
		t.Fatalf("Min = %v, %v", r, err)
	}
}

func TestMergeDisabled(t *testing.T) {
	ix, _ := newTestIndex(t, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	rng := rand.New(rand.NewSource(5))
	keys := make([]float64, 100)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if _, err := ix.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if s := ix.Metrics().Flat(); s.Merges != 0 {
		t.Fatalf("Merges = %d with merging disabled", s.Merges)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	ix, _ := newTestIndex(t, smallConfig())
	rng := rand.New(rand.NewSource(6))
	lo, hi := 1.0, 0.0
	for i := 0; i < 300; i++ {
		k := rng.Float64()
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
		if _, err := ix.Insert(record.Record{Key: k}); err != nil {
			t.Fatal(err)
		}
	}
	r, cost, err := ix.Min()
	if err != nil || r.Key != lo {
		t.Fatalf("Min = %v, %v; want %v", r, err, lo)
	}
	if cost.Lookups != 1 {
		t.Errorf("Min cost = %+v, want 1 lookup (Theorem 3)", cost)
	}
	r, cost, err = ix.Max()
	if err != nil || r.Key != hi {
		t.Fatalf("Max = %v, %v; want %v", r, err, hi)
	}
	if cost.Lookups != 1 {
		t.Errorf("Max cost = %+v, want 1 lookup (Theorem 3)", cost)
	}
}

func TestMinMaxSingleLeafTree(t *testing.T) {
	ix, _ := newTestIndex(t, smallConfig())
	if _, err := ix.Insert(record.Record{Key: 0.7}); err != nil {
		t.Fatal(err)
	}
	if r, _, err := ix.Min(); err != nil || r.Key != 0.7 {
		t.Fatalf("Min = %v, %v", r, err)
	}
	r, cost, err := ix.Max()
	if err != nil || r.Key != 0.7 {
		t.Fatalf("Max = %v, %v", r, err)
	}
	// "#0" misses on the single-leaf tree, falling back to "#".
	if cost.Lookups != 2 {
		t.Errorf("Max cost on single-leaf tree = %+v, want 2 lookups", cost)
	}
}

func TestMinMaxWalksEmptyBoundaryLeaves(t *testing.T) {
	ix, _ := newTestIndex(t, Config{SplitThreshold: 4, MergeThreshold: 0, Depth: 20})
	rng := rand.New(rand.NewSource(7))
	var keys []float64
	for i := 0; i < 64; i++ {
		k := rng.Float64()
		keys = append(keys, k)
		if _, err := ix.Insert(record.Record{Key: k}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(keys)
	// Empty the boundary leaves by deleting extreme keys; merging is
	// disabled so the empty leaves stay.
	for _, k := range keys[:10] {
		if _, err := ix.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys[len(keys)-10:] {
		if _, err := ix.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if r, _, err := ix.Min(); err != nil || r.Key != keys[10] {
		t.Fatalf("Min = %v, %v; want %v", r, err, keys[10])
	}
	if r, _, err := ix.Max(); err != nil || r.Key != keys[len(keys)-11] {
		t.Fatalf("Max = %v, %v; want %v", r, err, keys[len(keys)-11])
	}
}

func TestLookupCostBound(t *testing.T) {
	// Algorithm 2 probes at most ~log2(D) names; with D = 20 the bound is
	// 5 (the candidate name space has about D/2 = 10 elements).
	ix, _ := newTestIndex(t, DefaultConfig())
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	maxCost := 0
	for i := 0; i < 1000; i++ {
		_, cost, err := ix.LookupBucket(rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		if cost.Lookups > maxCost {
			maxCost = cost.Lookups
		}
	}
	if maxCost > 6 {
		t.Errorf("lookup cost reached %d DHT-lookups; want <= 6 for D=20", maxCost)
	}
}

func TestAlphaMeanUniform(t *testing.T) {
	// Section 9.2: for uniform data the average alpha is 1/2 + 1/(2*theta).
	theta := 40
	ix, _ := newTestIndex(t, Config{SplitThreshold: theta, MergeThreshold: 0, Depth: 24})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	mean, splits := ix.AlphaMean()
	if splits == 0 {
		t.Fatal("no splits")
	}
	want := 0.5 + 1/(2*float64(theta))
	if diff := mean - want; diff < -0.02 || diff > 0.02 {
		t.Errorf("alpha mean = %v, want about %v", mean, want)
	}
}

func TestCostAccountingMatchesMetrics(t *testing.T) {
	// The per-operation Cost returned by each method must agree with the
	// global instrumented counters.
	ix, _ := newTestIndex(t, smallConfig())
	rng := rand.New(rand.NewSource(10))
	var total int64
	for i := 0; i < 500; i++ {
		cost, err := ix.Insert(record.Record{Key: rng.Float64()})
		if err != nil {
			t.Fatal(err)
		}
		total += int64(cost.Lookups)
	}
	for i := 0; i < 50; i++ {
		_, cost, err := ix.Range(rng.Float64()*0.5, 0.5+rng.Float64()*0.5)
		if err != nil {
			t.Fatal(err)
		}
		total += int64(cost.Lookups)
	}
	_, cost, err := ix.Min()
	if err != nil {
		t.Fatal(err)
	}
	total += int64(cost.Lookups)
	if s := ix.Metrics().Flat(); s.Lookups != total {
		t.Fatalf("metrics lookups = %d, per-op sum = %d", s.Lookups, total)
	}
}

func TestBucketEncodeDecode(t *testing.T) {
	b := &Bucket{Label: mustLabel(t, "#0101")}
	for i := 0; i < 17; i++ {
		b.Records = append(b.Records, record.Record{Key: float64(i) / 32, Value: []byte{byte(i), 0xFF}})
	}
	data, err := EncodeBucket(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBucket(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != b.Label || len(got.Records) != len(b.Records) {
		t.Fatalf("round trip: %v", got)
	}
	for i := range b.Records {
		if got.Records[i].Key != b.Records[i].Key || string(got.Records[i].Value) != string(b.Records[i].Value) {
			t.Fatalf("record %d: %v != %v", i, got.Records[i], b.Records[i])
		}
	}
	if _, err := DecodeBucket([]byte("junk")); err == nil {
		t.Error("DecodeBucket(junk) should fail")
	}
}

func TestBucketClone(t *testing.T) {
	b := &Bucket{Label: mustLabel(t, "#01"), Records: []record.Record{{Key: 0.6, Value: []byte("x")}}}
	c := b.Clone()
	c.Records[0].Key = 0.7
	c.Records = append(c.Records, record.Record{Key: 0.9})
	if b.Records[0].Key != 0.6 || len(b.Records) != 1 {
		t.Fatalf("Clone aliases the original: %v", b)
	}
	if (&Bucket{Label: b.Label}).Clone().Records != nil {
		t.Error("Clone of nil records should stay nil")
	}
}
