package dht

import (
	"context"
	"errors"
	"sync"

	"lht/internal/metrics"
)

// flight is one in-progress inner Get that concurrent callers of the
// same key ride instead of issuing their own.
type flight struct {
	done chan struct{}
	v    Value
	err  error
}

// coalescer is the singleflight read layer: concurrent Gets of one key
// collapse onto a single inner Get, so N clients missing on one hot
// leaf label cost the substrate one physical fetch instead of N. It
// sits *below* the instrumentation layer, so every logical Get is still
// charged as a DHT-lookup — the paper's cost model is unchanged whether
// coalescing is on or off; only the physical round trips (and the hot
// peer's service load) shrink. CoalescedGets counts the rides.
//
// Followers share the leader's returned value. That matches the Local
// substrate's existing aliasing semantics, and the index layer never
// mutates a fetched bucket without cloning it first (the optimistic CAS
// loop), so the shared read is safe.
//
// The trade is a bounded read-your-writes window: a follower's Get may
// ride a flight whose physical fetch was served BEFORE a write that
// committed after the flight began — including the follower's own
// acknowledged write — so a coalesced read can return the pre-commit
// value once. The window is bounded by one in-flight fetch: the next Get
// after the flight resolves starts fresh and observes the commit. Paths
// that cannot tolerate the window bypass it with WithFreshRead — both
// index layers' CAS-conflict retry reads do, so a lost compare-and-swap
// always re-reads the winning epoch and conflicts never cascade into
// retry storms. Query paths accept the window as part of opting into
// Config.CoalesceGets: a record inserted mid-herd may be invisible to
// reads that joined the herd before its commit, exactly as if those
// reads had been issued just before the insert.
type coalescer struct {
	inner DHT
	c     *metrics.Counters

	mu       sync.Mutex
	inflight map[string]*flight
}

// WithCoalescing wraps inner with singleflight Get coalescing. The
// returned DHT re-exposes inner's optional Batcher and Conditional
// capabilities unchanged (batched and conditional ops are never
// coalesced), so capability type-assertions by upper layers see exactly
// what they would on inner. c, when non-nil, receives CoalescedGets.
func WithCoalescing(inner DHT, c *metrics.Counters) DHT {
	co := &coalescer{inner: inner, c: c, inflight: make(map[string]*flight)}
	b, hasB := inner.(Batcher)
	cd, hasC := inner.(Conditional)
	switch {
	case hasB && hasC:
		return struct {
			*coalescer
			Batcher
			Conditional
		}{co, b, cd}
	case hasB:
		return struct {
			*coalescer
			Batcher
		}{co, b}
	case hasC:
		return struct {
			*coalescer
			Conditional
		}{co, cd}
	default:
		return co
	}
}

// freshReadKey marks a context whose Gets must bypass coalescing.
type freshReadKey struct{}

// WithFreshRead marks ctx so coalesced Gets under it go straight to the
// substrate. A caller uses it when it *knows* its last snapshot is stale
// — typically after losing a compare-and-swap — because an in-flight
// fetch it would otherwise ride may have been served before the winning
// write landed, handing back the very epoch that just lost and turning
// one conflict into a retry storm.
func WithFreshRead(ctx context.Context) context.Context {
	if fresh, _ := ctx.Value(freshReadKey{}).(bool); fresh {
		return ctx
	}
	return context.WithValue(ctx, freshReadKey{}, true)
}

// Get issues the key's fetch if none is in flight, and otherwise waits
// for the in-flight one. A follower whose own context is still live
// does not inherit a leader's cancellation: it re-issues the fetch
// (possibly becoming the new leader) so one caller's timeout cannot
// poison its coincidental companions.
func (co *coalescer) Get(ctx context.Context, key string) (Value, error) {
	if fresh, _ := ctx.Value(freshReadKey{}).(bool); fresh {
		return co.inner.Get(ctx, key)
	}
	for {
		co.mu.Lock()
		if f, ok := co.inflight[key]; ok {
			co.mu.Unlock()
			co.c.AddCoalescedGets(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if isContextErr(f.err) && ctx.Err() == nil {
				continue // leader was cancelled, not us: fetch again
			}
			return f.v, f.err
		}
		f := &flight{done: make(chan struct{})}
		co.inflight[key] = f
		co.mu.Unlock()

		f.v, f.err = co.inner.Get(ctx, key)
		co.mu.Lock()
		delete(co.inflight, key)
		co.mu.Unlock()
		close(f.done)
		return f.v, f.err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (co *coalescer) Put(ctx context.Context, key string, v Value) error {
	return co.inner.Put(ctx, key, v)
}

func (co *coalescer) Take(ctx context.Context, key string) (Value, error) {
	return co.inner.Take(ctx, key)
}

func (co *coalescer) Remove(ctx context.Context, key string) error {
	return co.inner.Remove(ctx, key)
}

func (co *coalescer) Write(ctx context.Context, key string, v Value) error {
	return co.inner.Write(ctx, key, v)
}
