package metrics

import (
	"fmt"
	"sync"
	"time"
)

// OpEvent is one structured trace span: a single DHT primitive issued by
// the instrumentation layer, stamped with the operation class and phase
// that issued it, its duration, and how it ended. A bounded ring of
// these is enough to reconstruct a slow query span-by-span.
type OpEvent struct {
	Seq      uint64        // monotonically increasing per sink
	Start    time.Time     // when the primitive was issued
	Duration time.Duration // wall time of the primitive
	Kind     string        // DHT primitive: get, put, take, remove, write, get_batch, put_batch
	Key      string        // DHT key (empty for batches)
	Keys     int           // number of keys carried (1, or batch width)
	Op       Op            // operation class that issued it
	Phase    Phase         // algorithm phase that issued it
	Outcome  string        // ok, not_found, cancelled, deadline, error
	Err      string        // error text when Outcome is error (or not_found detail)
}

// String renders the event as one log-style line.
func (e OpEvent) String() string {
	target := e.Key
	if e.Keys > 1 {
		target = fmt.Sprintf("[%d keys]", e.Keys)
	}
	s := fmt.Sprintf("#%d %s/%s %s %s %v %s",
		e.Seq, e.Op, e.Phase, e.Kind, target, e.Duration.Round(time.Microsecond), e.Outcome)
	if e.Err != "" {
		s += ": " + e.Err
	}
	return s
}

// TraceSink receives op events from the instrumentation layer.
// Implementations must be safe for concurrent use; RecordOp runs on the
// operation's hot path, so it should be cheap and must not block.
type TraceSink interface {
	RecordOp(OpEvent)
}

// Ring is a bounded TraceSink keeping the most recent events. The
// fixed-size buffer means retention never grows with traffic: attach it
// to a long-running process and read the tail after a slow operation.
type Ring struct {
	mu   sync.Mutex
	buf  []OpEvent
	next int    // index of the slot to write
	full bool   // buf has wrapped at least once
	seq  uint64 // events recorded since creation or Reset
}

// NewRing returns a TraceSink retaining the last n events (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]OpEvent, n)}
}

// RecordOp stores the event, overwriting the oldest when full, and
// assigns its sequence number.
func (r *Ring) RecordOp(e OpEvent) {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []OpEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]OpEvent(nil), r.buf[:r.next]...)
	}
	out := make([]OpEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Total returns the number of events ever recorded, including those
// already overwritten.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Reset drops all retained events and restarts sequence numbering.
func (r *Ring) Reset() {
	r.mu.Lock()
	r.next, r.full, r.seq = 0, false, 0
	r.mu.Unlock()
}
