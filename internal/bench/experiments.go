package bench

import (
	"fmt"

	"lht/internal/costmodel"
	"lht/internal/lht"
	"lht/internal/pht"
	"lht/internal/record"
	"lht/internal/workload"
)

// RunAvgAlphaVsSize reproduces Fig. 6a: the average alpha (remote-bucket
// fraction per split) as progressively larger datasets are inserted, one
// curve per (distribution, theta) pair; the paper uses theta 40 and 160.
// Expected shape: all curves approach 1/2, offset by about 1/(2*theta).
func RunAvgAlphaVsSize(o Options, dists []workload.Dist, thetas []int, sizes []int) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name:   "Fig 6a",
		Title:  "Average alpha vs data size",
		XLabel: "data size (records)",
		YLabel: "average alpha",
	}
	maxSize := sizes[len(sizes)-1]
	for _, dist := range dists {
		for _, theta := range thetas {
			ys := make([][]float64, o.Trials)
			for t := 0; t < o.Trials; t++ {
				gen := workload.NewGenerator(dist, o.Seed+int64(t))
				recs := gen.Records(maxSize)
				ix, err := o.newLHT(theta, o.Depth)
				if err != nil {
					return res, err
				}
				row := make([]float64, 0, len(sizes))
				err = grow(recs, sizes,
					func(r record.Record) error { _, e := ix.Insert(r); return e },
					func(int) {
						mean, _ := ix.AlphaMean()
						row = append(row, mean)
					})
				if err != nil {
					return res, err
				}
				ys[t] = row
			}
			name := fmt.Sprintf("%s theta=%d", dist, theta)
			res.Series = append(res.Series, meanSeries(name, float64s(sizes), ys))
		}
	}
	return res, nil
}

// RunAvgAlphaVsTheta reproduces Fig. 6b: average alpha after inserting a
// fixed-size dataset, as theta_split varies. Expected shape: alpha =
// 1/2 + 1/(2*theta) for uniform data - the offset shrinks as theta grows.
func RunAvgAlphaVsTheta(o Options, dists []workload.Dist, thetas []int, size int) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name:   "Fig 6b",
		Title:  fmt.Sprintf("Average alpha vs theta_split (data size %d)", size),
		XLabel: "theta_split",
		YLabel: "average alpha",
	}
	for _, dist := range dists {
		ys := make([][]float64, o.Trials)
		for t := 0; t < o.Trials; t++ {
			gen := workload.NewGenerator(dist, o.Seed+int64(t))
			recs := gen.Records(size)
			row := make([]float64, 0, len(thetas))
			for _, theta := range thetas {
				ix, err := o.newLHT(theta, o.Depth)
				if err != nil {
					return res, err
				}
				for _, r := range recs {
					if _, err := ix.Insert(r); err != nil {
						return res, err
					}
				}
				mean, _ := ix.AlphaMean()
				row = append(row, mean)
			}
			ys[t] = row
		}
		xs := make([]float64, len(thetas))
		for i, th := range thetas {
			xs[i] = float64(th)
		}
		res.Series = append(res.Series, meanSeries(dist.String(), xs, ys))
	}
	return res, nil
}

// RunMaintenance reproduces Fig. 7: cumulative maintenance cost while
// progressively inserting, for LHT and PHT. It returns two figures: 7a is
// moved record slots, 7b is maintenance DHT-lookups. Expected shape: both
// grow linearly; LHT moves about half of PHT's records and spends about a
// quarter of PHT's lookups.
func RunMaintenance(o Options, dists []workload.Dist, sizes []int) (moved, lookups Result, err error) {
	o = o.WithDefaults()
	moved = Result{
		Name:   "Fig 7a",
		Title:  fmt.Sprintf("Cumulative data movement (theta=%d)", o.Theta),
		XLabel: "data size (records)",
		YLabel: "moved record slots",
	}
	lookups = Result{
		Name:   "Fig 7b",
		Title:  fmt.Sprintf("Cumulative maintenance DHT-lookups (theta=%d)", o.Theta),
		XLabel: "data size (records)",
		YLabel: "maintenance DHT-lookups",
	}
	maxSize := sizes[len(sizes)-1]
	for _, dist := range dists {
		lhtMoved := make([][]float64, o.Trials)
		lhtLook := make([][]float64, o.Trials)
		phtMoved := make([][]float64, o.Trials)
		phtLook := make([][]float64, o.Trials)
		for t := 0; t < o.Trials; t++ {
			gen := workload.NewGenerator(dist, o.Seed+int64(t))
			recs := gen.Records(maxSize)

			lix, err := o.newLHT(o.Theta, o.Depth)
			if err != nil {
				return moved, lookups, err
			}
			var lm, ll []float64
			err = grow(recs, sizes,
				func(r record.Record) error { _, e := lix.Insert(r); return e },
				func(int) {
					s := lix.Metrics().Flat()
					lm = append(lm, float64(s.MovedRecords))
					ll = append(ll, float64(s.MaintLookups))
				})
			if err != nil {
				return moved, lookups, err
			}

			pix, err := o.newPHT(o.Theta, o.Depth)
			if err != nil {
				return moved, lookups, err
			}
			var pm, pl []float64
			err = grow(recs, sizes,
				func(r record.Record) error { _, e := pix.Insert(r); return e },
				func(int) {
					s := pix.Metrics().Flat()
					pm = append(pm, float64(s.MovedRecords))
					pl = append(pl, float64(s.MaintLookups))
				})
			if err != nil {
				return moved, lookups, err
			}
			lhtMoved[t], lhtLook[t], phtMoved[t], phtLook[t] = lm, ll, pm, pl
		}
		xs := float64s(sizes)
		moved.Series = append(moved.Series,
			meanSeries("LHT "+dist.String(), xs, lhtMoved),
			meanSeries("PHT "+dist.String(), xs, phtMoved))
		lookups.Series = append(lookups.Series,
			meanSeries("LHT "+dist.String(), xs, lhtLook),
			meanSeries("PHT "+dist.String(), xs, phtLook))
	}
	return moved, lookups, nil
}

// RunLookup reproduces Fig. 8 (8a uniform, 8b gaussian): the average
// DHT-lookups per lookup operation as data size varies, for LHT and PHT,
// with D = o.Depth and uniformly distributed query keys. Expected shape:
// fluctuating curves with valleys where the tree depth lets the binary
// search resolve in few probes; LHT below PHT by roughly 20-30%.
func RunLookup(o Options, dist workload.Dist, sizes []int) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name:   "Fig 8",
		Title:  fmt.Sprintf("Lookup performance, %s data (D=%d)", dist, o.Depth),
		XLabel: "data size (records)",
		YLabel: "DHT-lookups per lookup",
	}
	maxSize := sizes[len(sizes)-1]
	lhtYs := make([][]float64, o.Trials)
	phtYs := make([][]float64, o.Trials)
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(maxSize)
		queries := gen.LookupKeys(o.Queries)

		lix, err := o.newLHT(o.Theta, o.Depth)
		if err != nil {
			return res, err
		}
		var lrow []float64
		err = grow(recs, sizes,
			func(r record.Record) error { _, e := lix.Insert(r); return e },
			func(int) {
				var total int
				for _, q := range queries {
					_, cost, err2 := lix.LookupBucket(q)
					if err2 != nil {
						err = err2
						return
					}
					total += cost.Lookups
				}
				lrow = append(lrow, float64(total)/float64(len(queries)))
			})
		if err != nil {
			return res, err
		}

		pix, err := o.newPHT(o.Theta, o.Depth)
		if err != nil {
			return res, err
		}
		var prow []float64
		err = grow(recs, sizes,
			func(r record.Record) error { _, e := pix.Insert(r); return e },
			func(int) {
				var total int
				for _, q := range queries {
					_, cost, err2 := pix.LookupLeaf(q)
					if err2 != nil {
						err = err2
						return
					}
					total += cost.Lookups
				}
				prow = append(prow, float64(total)/float64(len(queries)))
			})
		if err != nil {
			return res, err
		}
		lhtYs[t], phtYs[t] = lrow, prow
	}
	xs := float64s(sizes)
	res.Series = append(res.Series, meanSeries("LHT", xs, lhtYs), meanSeries("PHT", xs, phtYs))
	return res, nil
}

// rangeTriple measures one range query workload on pre-built twin indexes.
type rangeCosts struct {
	lhtBW, seqBW, parBW    float64 // DHT-lookups (bandwidth, Fig. 9)
	lhtLat, seqLat, parLat float64 // parallel steps (latency, Fig. 10)
}

// measureRanges runs q random ranges of the given span over both indexes.
func measureRanges(lix *lht.Index, pix *pht.Index, gen *workload.Generator, span float64, q int) (rangeCosts, error) {
	var rc rangeCosts
	for i := 0; i < q; i++ {
		lo, hi := gen.RangeQuery(span)
		_, lc, err := lix.Range(lo, hi)
		if err != nil {
			return rc, fmt.Errorf("lht range [%v,%v): %w", lo, hi, err)
		}
		_, sc, err := pix.RangeSequential(lo, hi)
		if err != nil {
			return rc, fmt.Errorf("pht seq range [%v,%v): %w", lo, hi, err)
		}
		_, pc, err := pix.RangeParallel(lo, hi)
		if err != nil {
			return rc, fmt.Errorf("pht par range [%v,%v): %w", lo, hi, err)
		}
		rc.lhtBW += float64(lc.Lookups)
		rc.seqBW += float64(sc.Lookups)
		rc.parBW += float64(pc.Lookups)
		rc.lhtLat += float64(lc.Steps)
		rc.seqLat += float64(sc.Steps)
		rc.parLat += float64(pc.Steps)
	}
	n := float64(q)
	rc.lhtBW /= n
	rc.seqBW /= n
	rc.parBW /= n
	rc.lhtLat /= n
	rc.seqLat /= n
	rc.parLat /= n
	return rc, nil
}

// RunRangeVsSize reproduces Figs. 9a and 10a: range-query bandwidth
// (DHT-lookups) and latency (parallel steps) as data size varies, at a
// fixed span. Expected shape: PHT(parallel) costs the most bandwidth; LHT
// and PHT(sequential) are near optimal; PHT(sequential) latency is an
// order of magnitude above the other two; LHT's latency is the lowest.
func RunRangeVsSize(o Options, dist workload.Dist, sizes []int, span float64) (bandwidth, latency Result, err error) {
	o = o.WithDefaults()
	bandwidth = Result{
		Name:   "Fig 9a",
		Title:  fmt.Sprintf("Range bandwidth vs size, %s data, span %.2g", dist, span),
		XLabel: "data size (records)",
		YLabel: "DHT-lookups per query",
	}
	latency = Result{
		Name:   "Fig 10a",
		Title:  fmt.Sprintf("Range latency vs size, %s data, span %.2g", dist, span),
		XLabel: "data size (records)",
		YLabel: "parallel steps per query",
	}
	kinds := []string{"LHT", "PHT(seq)", "PHT(par)"}
	bw := make(map[string][][]float64, 3)
	lat := make(map[string][][]float64, 3)
	for _, k := range kinds {
		bw[k] = make([][]float64, o.Trials)
		lat[k] = make([][]float64, o.Trials)
	}
	maxSize := sizes[len(sizes)-1]
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(maxSize)
		lix, err := o.newLHT(o.Theta, o.Depth)
		if err != nil {
			return bandwidth, latency, err
		}
		pix, err := o.newPHT(o.Theta, o.Depth)
		if err != nil {
			return bandwidth, latency, err
		}
		next := 0
		for i, r := range recs {
			if _, err := lix.Insert(r); err != nil {
				return bandwidth, latency, err
			}
			if _, err := pix.Insert(r); err != nil {
				return bandwidth, latency, err
			}
			if next < len(sizes) && i+1 == sizes[next] {
				rc, err := measureRanges(lix, pix, gen, span, o.Queries)
				if err != nil {
					return bandwidth, latency, err
				}
				appendCosts(bw, lat, t, rc)
				next++
			}
		}
	}
	xs := float64s(sizes)
	for _, k := range kinds {
		bandwidth.Series = append(bandwidth.Series, meanSeries(k, xs, bw[k]))
		latency.Series = append(latency.Series, meanSeries(k, xs, lat[k]))
	}
	return bandwidth, latency, nil
}

// RunRangeVsSpan reproduces Figs. 9b and 10b: the same measures as the
// query span varies at a fixed data size.
func RunRangeVsSpan(o Options, dist workload.Dist, size int, spans []float64) (bandwidth, latency Result, err error) {
	o = o.WithDefaults()
	bandwidth = Result{
		Name:   "Fig 9b",
		Title:  fmt.Sprintf("Range bandwidth vs span, %s data, size %d", dist, size),
		XLabel: "query span",
		YLabel: "DHT-lookups per query",
	}
	latency = Result{
		Name:   "Fig 10b",
		Title:  fmt.Sprintf("Range latency vs span, %s data, size %d", dist, size),
		XLabel: "query span",
		YLabel: "parallel steps per query",
	}
	kinds := []string{"LHT", "PHT(seq)", "PHT(par)"}
	bw := make(map[string][][]float64, 3)
	lat := make(map[string][][]float64, 3)
	for _, k := range kinds {
		bw[k] = make([][]float64, o.Trials)
		lat[k] = make([][]float64, o.Trials)
	}
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(size)
		lix, err := o.newLHT(o.Theta, o.Depth)
		if err != nil {
			return bandwidth, latency, err
		}
		pix, err := o.newPHT(o.Theta, o.Depth)
		if err != nil {
			return bandwidth, latency, err
		}
		for _, r := range recs {
			if _, err := lix.Insert(r); err != nil {
				return bandwidth, latency, err
			}
			if _, err := pix.Insert(r); err != nil {
				return bandwidth, latency, err
			}
		}
		for _, span := range spans {
			rc, err := measureRanges(lix, pix, gen, span, o.Queries)
			if err != nil {
				return bandwidth, latency, err
			}
			appendCosts(bw, lat, t, rc)
		}
	}
	for _, k := range kinds {
		bandwidth.Series = append(bandwidth.Series, meanSeries(k, spans, bw[k]))
		latency.Series = append(latency.Series, meanSeries(k, spans, lat[k]))
	}
	return bandwidth, latency, nil
}

func appendCosts(bw, lat map[string][][]float64, t int, rc rangeCosts) {
	bw["LHT"][t] = append(bw["LHT"][t], rc.lhtBW)
	bw["PHT(seq)"][t] = append(bw["PHT(seq)"][t], rc.seqBW)
	bw["PHT(par)"][t] = append(bw["PHT(par)"][t], rc.parBW)
	lat["LHT"][t] = append(lat["LHT"][t], rc.lhtLat)
	lat["PHT(seq)"][t] = append(lat["PHT(seq)"][t], rc.seqLat)
	lat["PHT(par)"][t] = append(lat["PHT(par)"][t], rc.parLat)
}

// RunSavingRatio reproduces the section 8.2 analysis (equation 3): the
// per-split maintenance saving of LHT over PHT as a function of gamma =
// theta*i/j, both analytically and measured from instrumented growth runs
// priced by the cost model. Expected shape: decreasing from 0.75 toward
// 0.5.
func RunSavingRatio(o Options, dist workload.Dist, size int, gammas []float64) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name:   "Eq 3",
		Title:  fmt.Sprintf("Maintenance saving ratio vs gamma (theta=%d, size %d)", o.Theta, size),
		XLabel: "gamma = theta*i/j",
		YLabel: "saving ratio",
	}
	analytic := Series{Name: "analytic (Eq 3)"}
	for _, g := range gammas {
		analytic.Points = append(analytic.Points, Point{X: g, Y: costmodel.SavingRatioFromGamma(g)})
	}

	// One growth run per trial measures total moved slots and maintenance
	// lookups for both schemes; each gamma prices the same totals.
	type totals struct{ lm, ll, pm, pl float64 }
	sums := make([]totals, 0, o.Trials)
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(size)
		lix, err := o.newLHT(o.Theta, o.Depth)
		if err != nil {
			return res, err
		}
		pix, err := o.newPHT(o.Theta, o.Depth)
		if err != nil {
			return res, err
		}
		for _, r := range recs {
			if _, err := lix.Insert(r); err != nil {
				return res, err
			}
			if _, err := pix.Insert(r); err != nil {
				return res, err
			}
		}
		ls, ps := lix.Metrics().Flat(), pix.Metrics().Flat()
		sums = append(sums, totals{
			lm: float64(ls.MovedRecords), ll: float64(ls.MaintLookups),
			pm: float64(ps.MovedRecords), pl: float64(ps.MaintLookups),
		})
	}
	measured := Series{Name: "measured"}
	for _, g := range gammas {
		params := costmodel.Params{RecordUnit: g / float64(o.Theta), LookupUnit: 1}
		var sum float64
		for _, s := range sums {
			sum += params.MeasuredSaving(s.lm, s.ll, s.pm, s.pl)
		}
		measured.Points = append(measured.Points, Point{X: g, Y: sum / float64(len(sums))})
	}
	res.Series = append(res.Series, analytic, measured)
	return res, nil
}

// RunMinMax reproduces Theorem 3's claim as an experiment: the DHT-lookup
// cost of min and max queries stays constant (one lookup) regardless of
// data size.
func RunMinMax(o Options, dist workload.Dist, sizes []int) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name:   "Thm 3",
		Title:  "Min/max query cost vs data size",
		XLabel: "data size (records)",
		YLabel: "DHT-lookups per query",
	}
	maxSize := sizes[len(sizes)-1]
	minYs := make([][]float64, o.Trials)
	maxYs := make([][]float64, o.Trials)
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(maxSize)
		ix, err := o.newLHT(o.Theta, o.Depth)
		if err != nil {
			return res, err
		}
		var mins, maxs []float64
		err = grow(recs, sizes,
			func(r record.Record) error { _, e := ix.Insert(r); return e },
			func(int) {
				_, mc, err2 := ix.Min()
				if err2 != nil {
					err = err2
					return
				}
				_, xc, err2 := ix.Max()
				if err2 != nil {
					err = err2
					return
				}
				mins = append(mins, float64(mc.Lookups))
				maxs = append(maxs, float64(xc.Lookups))
			})
		if err != nil {
			return res, err
		}
		minYs[t], maxYs[t] = mins, maxs
	}
	xs := float64s(sizes)
	res.Series = append(res.Series, meanSeries("min query", xs, minYs), meanSeries("max query", xs, maxYs))
	return res, nil
}
