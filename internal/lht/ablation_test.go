package lht

import (
	"errors"
	"math/rand"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

// TestLinearLookupAgreesWithBinary checks the ablation strategy against
// Algorithm 2 on the same tree: same buckets found, never cheaper than
// one probe, no failed gets (the linear walk only touches existing
// names).
func TestLinearLookupAgreesWithBinary(t *testing.T) {
	ix, err := New(dht.NewLocal(), Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(111))
	for i := 0; i < 3000; i++ {
		if _, err := ix.Insert(record.Record{Key: rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	before := ix.Metrics()
	for i := 0; i < 300; i++ {
		q := rng.Float64()
		bb, _, err := ix.LookupBucket(q)
		if err != nil {
			t.Fatal(err)
		}
		lb, cost, err := ix.LookupBucketLinear(q)
		if err != nil {
			t.Fatal(err)
		}
		if bb.Label != lb.Label {
			t.Fatalf("lookup(%v): binary %s vs linear %s", q, bb.Label, lb.Label)
		}
		if cost.Lookups < 1 || cost.Steps != cost.Lookups {
			t.Fatalf("linear cost %+v", cost)
		}
	}
	diff := ix.Metrics().Sub(before).Flat()
	// The binary search misses; the linear walk never does. With 300 of
	// each, failed gets must come only from the binary side.
	if diff.FailedGets == 0 {
		t.Error("binary search should have produced some failed gets")
	}

	// SearchLinear end to end.
	rng = rand.New(rand.NewSource(111))
	k := rng.Float64()
	rec, _, err := ix.SearchLinear(k)
	if err != nil || rec.Key != k {
		t.Fatalf("SearchLinear = %v, %v", rec, err)
	}
	if _, _, err := ix.SearchLinear(0.987654321); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("SearchLinear absent = %v", err)
	}
	if _, _, err := ix.SearchLinear(1.5); err == nil {
		t.Fatal("SearchLinear out of domain should fail")
	}
}

func TestSmallHelpers(t *testing.T) {
	ix, err := New(dht.NewLocal(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Config().SplitThreshold != 100 {
		t.Error("Config accessor broken")
	}
	b := &Bucket{Label: mustLabel(t, "#01"), Records: []record.Record{{Key: 0.6}}}
	if got := b.String(); got != "bucket(#01, 1 records)" {
		t.Errorf("String = %q", got)
	}
}
