package tcpnet

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	ilht "lht/internal/lht"
	"lht/internal/record"
)

// servedCounters are the cost-model counters a tcpnet server maintains,
// summed across a cluster.
type servedCounters struct {
	Lookups, FailedGets, BatchOps, BatchedKeys, RoundTrips int64
}

func sumServed(servers []*Server) servedCounters {
	var tot servedCounters
	for _, s := range servers {
		f := s.Metrics().Flat()
		tot.Lookups += f.Lookups
		tot.FailedGets += f.FailedGets
		tot.BatchOps += f.BatchOps
		tot.BatchedKeys += f.BatchedKeys
		tot.RoundTrips += f.RoundTrips()
	}
	return tot
}

// runWireArm boots a cluster, runs the oracle workload over the given
// wire format, and returns the gob-encoded tree plus the served counters.
// On the first call *addrs is empty and the cluster picks fresh ports,
// recording them; later calls rebind the same ports so consistent hashing
// assigns every key to the same node in every arm (server-side batch
// counters depend on how keys group by owner). Everything is torn down
// before returning so the next arm can bind.
func runWireArm(t *testing.T, addrs *[]string, wire Wire) ([]byte, servedCounters) {
	t.Helper()
	fresh := len(*addrs) == 0
	servers := make([]*Server, 0, 3)
	var conns []*Client
	for i := 0; i < 3; i++ {
		var ln net.Listener
		var err error
		if fresh {
			ln, err = net.Listen("tcp", "127.0.0.1:0")
		} else {
			for try := 0; try < 100; try++ {
				ln, err = net.Listen("tcp", (*addrs)[i])
				if err == nil {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		if err != nil {
			t.Skipf("port not reusable for the second arm: %v", err)
		}
		if fresh {
			*addrs = append(*addrs, ln.Addr().String())
		}
		srv := NewServer()
		go func() { _ = srv.Serve(ln) }()
		servers = append(servers, srv)
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
		for _, s := range servers {
			_ = s.Close()
		}
	}()

	c, err := DialContext(context.Background(), *addrs, WithWire(wire))
	if err != nil {
		t.Fatal(err)
	}
	conns = append(conns, c)

	ix, err := ilht.New(c, ilht.Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic workload: bulk load (exercises the batch plane), point
	// inserts, deletes, searches and range queries, including misses.
	rng := rand.New(rand.NewSource(99))
	recs := make([]record.Record, 200)
	for i := range recs {
		recs[i] = record.Record{Key: rng.Float64(), Value: []byte(fmt.Sprintf("r%d", i))}
	}
	if _, err := ix.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	keys := make([]float64, 0, 120)
	for i := 0; i < 120; i++ {
		k := rng.Float64()
		keys = append(keys, k)
		if _, err := ix.Insert(record.Record{Key: k, Value: []byte("ins")}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := ix.Delete(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 40; i < 80; i++ {
		if _, _, err := ix.Search(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		lo := rng.Float64() * 0.9
		if _, _, err := ix.Range(lo, lo+0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	leaves, err := ix.Leaves()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(leaves); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sumServed(servers)
}

// TestCodecOracle pins the framed binary wire to the legacy gob wire: the
// identical index workload over each codec must produce byte-identical
// tree state and byte-identical cost-model counters — the new wire may
// change how bytes travel, never what the index observes or what the cost
// model charges.
func TestCodecOracle(t *testing.T) {
	var addrs []string
	binTree, binServed := runWireArm(t, &addrs, WireBinary)
	gobTree, gobServed := runWireArm(t, &addrs, WireGob)

	if !bytes.Equal(binTree, gobTree) {
		t.Errorf("tree state diverges across codecs: %d vs %d bytes", len(binTree), len(gobTree))
	}
	if binServed != gobServed {
		t.Errorf("cost-model counters diverge across codecs:\n binary: %+v\n gob:    %+v", binServed, gobServed)
	}
	if binServed.Lookups == 0 || binServed.BatchOps == 0 {
		t.Errorf("oracle workload did not exercise the cost model: %+v", binServed)
	}
}
