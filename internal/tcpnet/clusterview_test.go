package tcpnet

import (
	"context"
	"net"
	"testing"
	"time"

	"lht/internal/dht"
)

// startMemberCluster boots n servers with membership enabled (each seeded
// with every other) and returns servers, memberships, and addresses.
func startMemberCluster(t *testing.T, n int) ([]*Server, []*Membership, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	srvs := make([]*Server, n)
	mems := make([]*Membership, n)
	for i := range lns {
		srvs[i] = NewServer()
		mems[i] = srvs[i].EnableMembership(MembershipConfig{
			Self: addrs[i], Seeds: addrs, Seed: int64(i + 1),
		})
		go func(s *Server, ln net.Listener) { _ = s.Serve(ln) }(srvs[i], lns[i])
		t.Cleanup(func(i int) func() { return func() { _ = srvs[i].Close() } }(i))
	}
	return srvs, mems, addrs
}

func TestDialClusterConfig(t *testing.T) {
	ctx := context.Background()
	_, _, addrs := startMemberCluster(t, 3)
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v.([]byte)) != "v" {
		t.Fatalf("got %q", v)
	}
}

func TestDialClusterConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Dial(ctx, ClusterConfig{}); err == nil {
		t.Error("empty seeds must fail")
	}
	if _, err := Dial(ctx, ClusterConfig{Seeds: []string{"a:1"}, HintedHandoff: true}); err == nil {
		t.Error("hinted handoff without replication must fail")
	}
	if _, err := Dial(ctx, ClusterConfig{Seeds: []string{"a:1", "b:1"}, Replicas: 2, Wire: WireGob}); err == nil {
		t.Error("replication on the gob wire must fail")
	}
}

func TestRefreshViewGrowsRing(t *testing.T) {
	ctx := context.Background()
	_, mems, addrs := startMemberCluster(t, 3)
	// Converge the server views first.
	for i := 0; i < 4; i++ {
		for _, m := range mems {
			_ = m.Tick(ctx)
		}
	}
	// The client bootstraps off a single seed; one refresh teaches it the
	// whole cluster.
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs[:1]})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := len(c.NodeAddrs()); got != 1 {
		t.Fatalf("bootstrap ring size = %d, want 1", got)
	}
	if err := c.RefreshView(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(c.NodeAddrs()); got != 3 {
		t.Fatalf("refreshed ring size = %d, want 3: %v", got, c.NodeAddrs())
	}
	if c.View().Epoch == 0 {
		t.Fatal("refresh must adopt a non-zero view epoch")
	}
}

func TestApplyViewRetiresDeadMember(t *testing.T) {
	ctx := context.Background()
	srvs, mems, addrs := startMemberCluster(t, 4)
	for i := 0; i < 5; i++ {
		for _, m := range mems {
			_ = m.Tick(ctx)
		}
	}
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Kill one node; tick the survivors until they declare it dead.
	_ = srvs[3].Close()
	alive := mems[:3]
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for _, m := range alive {
			_ = m.Tick(ctx)
			st, _ := m.View().Find(addrs[3])
			if st.State != dht.MemberDead {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never declared the node dead")
		}
	}
	if err := c.RefreshView(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(c.NodeAddrs()); got != 3 {
		t.Fatalf("ring size after death = %d, want 3: %v", got, c.NodeAddrs())
	}
	for _, a := range c.NodeAddrs() {
		if a == addrs[3] {
			t.Fatal("dead member still routable")
		}
	}
	// Ops must still work on the shrunken ring.
	if err := c.Put(ctx, "post-death", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestApplyViewRefusesToShrinkBelowReplicas(t *testing.T) {
	ctx := context.Background()
	_, _, addrs := startMemberCluster(t, 3)
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var v dht.ClusterView
	v.Upsert(dht.Member{Addr: addrs[0], State: dht.MemberAlive})
	v.Upsert(dht.Member{Addr: addrs[1], State: dht.MemberAlive})
	v.Upsert(dht.Member{Addr: addrs[2], State: dht.MemberDead, Incarnation: 1})
	if c.applyView(v) {
		t.Fatal("view below the replica count must be held, not applied")
	}
	if got := len(c.NodeAddrs()); got != 3 {
		t.Fatalf("ring shrank to %d", got)
	}
}

func TestHintedHandoffParksAndReplays(t *testing.T) {
	ctx := context.Background()
	srvs, mems, addrs := startMemberCluster(t, 3)
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs, Replicas: 2, HintedHandoff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Choose the downed holder as the SECONDARY of the key so the primary
	// stays up to accept both its copy and the park.
	key := "hh-key"
	owners := c.owners(key)
	victim := owners[1].addr
	var victimIdx int
	for i, a := range addrs {
		if a == victim {
			victimIdx = i
		}
	}
	_ = srvs[victimIdx].Close()

	// The put must succeed despite the down holder: its copy parks.
	pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	err = c.Put(pctx, key, []byte("v1"))
	cancel()
	if err != nil {
		t.Fatalf("put with hinted handoff failed: %v", err)
	}
	backlog := 0
	for i, s := range srvs {
		if i == victimIdx {
			continue
		}
		backlog += s.HintBacklog()[victim]
	}
	if backlog != 1 {
		t.Fatalf("parked hints = %d, want 1", backlog)
	}

	// Resurrect the holder and let the park node replay.
	ln, err := net.Listen("tcp", victim)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", victim, err)
	}
	back := NewServer()
	_ = back.EnableMembership(MembershipConfig{Self: victim, Seeds: addrs, Seed: 99})
	go func() { _ = back.Serve(ln) }()
	t.Cleanup(func() { _ = back.Close() })

	deadline := time.Now().Add(10 * time.Second)
	for !back.Has(key) {
		for i, m := range mems {
			if i != victimIdx {
				_ = m.Tick(ctx)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("hint never replayed to the returned holder")
		}
	}
}

func TestEnsureReplicated(t *testing.T) {
	ctx := context.Background()
	srvs, _, addrs := startMemberCluster(t, 3)
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Sabotage one copy directly in a holder's store.
	victim := c.owners("k")[1]
	for _, s := range srvs {
		s.mu.Lock()
		if s.mem.self == victim.addr {
			delete(s.store, "k")
		}
		s.mu.Unlock()
	}
	rep, err := c.EnsureReplicated(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != 3 || rep.Missing != 1 || rep.Restored != 1 {
		t.Fatalf("repair = %+v, want 3 probes / 1 missing / 1 restored", rep)
	}
	// All three holders must hold the key again.
	for _, s := range srvs {
		if !s.Has("k") {
			t.Fatal("replica not restored")
		}
	}
	// A clean key needs no repair.
	rep, err = c.EnsureReplicated(ctx, "k")
	if err != nil || rep.Missing != 0 || rep.Restored != 0 {
		t.Fatalf("second pass = %+v, %v", rep, err)
	}
	// An absent key is not an error.
	rep, err = c.EnsureReplicated(ctx, "never-stored")
	if err != nil || rep.Restored != 0 {
		t.Fatalf("absent key = %+v, %v", rep, err)
	}
}

func TestClusterStatusReport(t *testing.T) {
	ctx := context.Background()
	_, mems, addrs := startMemberCluster(t, 3)
	for i := 0; i < 4; i++ {
		for _, m := range mems {
			_ = m.Tick(ctx)
		}
	}
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 3 {
		t.Fatalf("status has %d members, want 3: %+v", len(st.Members), st)
	}
	// All servers bootstrapped with the identical full member list, so no
	// exchange ever changed a view and the epoch legitimately stays 0;
	// the report must mirror whatever the client's merged view holds.
	if got := c.View().Epoch; st.ViewEpoch != got {
		t.Fatalf("status epoch %d != client view epoch %d", st.ViewEpoch, got)
	}
	for _, m := range st.Members {
		if m.State != dht.MemberAlive {
			t.Fatalf("%s reported %s, want alive", m.Addr, m.State)
		}
		if m.Breaker != dht.BreakerClosed {
			t.Fatalf("%s breaker %v, want closed", m.Addr, m.Breaker)
		}
	}
}

// TestClusterStatusWithoutMembershipPlane pins the fallback: against a
// plain cluster the report is the client's own ring view.
func TestClusterStatusWithoutMembershipPlane(t *testing.T) {
	ctx := context.Background()
	addrs := startServers(t, 2)
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 2 {
		t.Fatalf("fallback status has %d members, want 2", len(st.Members))
	}
}

// TestRefreshViewRevivesBreaker pins the revive rule: a breaker opened
// against a node that later rejoins must close as soon as a view refresh
// brings back the member's refutation (alive at a bumped incarnation) —
// gossip evidence outranks the breaker's stale failure memory.
func TestRefreshViewRevivesBreaker(t *testing.T) {
	ctx := context.Background()
	srvs, mems, addrs := startMemberCluster(t, 3)
	c, err := Dial(ctx, ClusterConfig{Seeds: addrs, Replicas: 2, HintedHandoff: true,
		Health: &dht.BreakerConfig{Threshold: 2, Cooldown: time.Minute, MaxCooldown: time.Minute, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Kill a node and hammer it until its breaker opens. The minute-long
	// cooldown guarantees the breaker cannot recover on its own within
	// this test: only the revive path can close it.
	key := "revive-key"
	victim := c.owners(key)[0].addr
	var victimIdx int
	for i, a := range addrs {
		if a == victim {
			victimIdx = i
		}
	}
	_ = srvs[victimIdx].Close()
	for i := 0; i < 4 && c.Health(victim) != dht.BreakerOpen; i++ {
		gctx, cancel := context.WithTimeout(ctx, time.Second)
		_, _ = c.Get(gctx, key)
		cancel()
	}
	if got := c.Health(victim); got != dht.BreakerOpen {
		t.Fatalf("breaker for downed node = %s, want open", got)
	}

	// A refresh while the node is still down must NOT revive: the view has
	// nothing newer than the client's own suspicion.
	_ = c.RefreshView(ctx)
	if got := c.Health(victim); got != dht.BreakerOpen {
		t.Fatalf("breaker revived without evidence: %s", got)
	}

	// Rejoin at the same address; gossip until the refutation (alive at a
	// bumped incarnation) reaches the client and revives the breaker.
	ln, err := net.Listen("tcp", victim)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", victim, err)
	}
	back := NewServer()
	mems[victimIdx] = back.EnableMembership(MembershipConfig{Self: victim, Seeds: addrs, Seed: 99})
	go func() { _ = back.Serve(ln) }()
	t.Cleanup(func() { _ = back.Close() })

	deadline := time.Now().Add(10 * time.Second)
	for c.Health(victim) != dht.BreakerClosed {
		for _, m := range mems {
			_ = m.Tick(ctx)
		}
		_ = c.RefreshView(ctx)
		if time.Now().After(deadline) {
			t.Fatalf("breaker never revived; view %v", c.View())
		}
	}
	if err := c.Put(ctx, key, []byte("after")); err != nil {
		t.Fatalf("put after revive: %v", err)
	}
}
