package lht

// Scrub-driven re-replication and the cluster-status facade, exercised
// over a real replicated tcpnet cluster: a node that comes back empty
// (the worst non-graceful churn — all its copies lost) is refilled by
// the next scrub pass, and the same pass is a strict no-op on substrates
// without a membership plane.

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
	"lht/internal/tcpnet"
)

// startReplicatedIndex boots n tcpnet servers, dials a cluster client
// with the given replica count, and builds an index over it.
func startReplicatedIndex(t *testing.T, n, replicas int, cfg Config) ([]*tcpnet.Server, []string, *Index) {
	t.Helper()
	gob.Register(&Bucket{})
	srvs := make([]*tcpnet.Server, n)
	addrs := make([]string, n)
	for i := range srvs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		srvs[i] = tcpnet.NewServer()
		go func(s *tcpnet.Server, ln net.Listener) { _ = s.Serve(ln) }(srvs[i], ln)
		t.Cleanup(func(i int) func() { return func() { _ = srvs[i].Close() } }(i))
	}
	c, err := tcpnet.Dial(context.Background(), tcpnet.ClusterConfig{Seeds: addrs, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ix, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srvs, addrs, ix
}

func TestScrubRereplicatesEmptiedNode(t *testing.T) {
	ctx := context.Background()
	cfg := Config{SplitThreshold: 4, Depth: 20, Rereplicate: true}
	srvs, addrs, ix := startReplicatedIndex(t, 3, 3, cfg)

	for i := 0; i < 16; i++ {
		r := record.Record{Key: (float64(i) + 0.5) / 16, Value: []byte{byte(i)}}
		if _, err := ix.InsertContext(ctx, r); err != nil {
			t.Fatal(err)
		}
	}

	// A clean pass over a healthy cluster probes every owner of every
	// visited key and restores nothing.
	rep, err := ix.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("healthy cluster scrub not clean: %s", rep)
	}
	if rep.ReplicaProbes != 3*rep.Leaves || rep.ReplicaMissing != 0 || rep.ReplicaRestored != 0 {
		t.Fatalf("healthy pass = %d probes/%d missing/%d restored over %d leaves",
			rep.ReplicaProbes, rep.ReplicaMissing, rep.ReplicaRestored, rep.Leaves)
	}
	if rep.Lookups < rep.ReplicaProbes {
		t.Fatalf("probe round trips not charged: %d lookups < %d probes", rep.Lookups, rep.ReplicaProbes)
	}

	// Kill one holder and bring it back EMPTY at the same address: every
	// bucket has lost one replica copy.
	_ = srvs[2].Close()
	ln, err := net.Listen("tcp", addrs[2])
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addrs[2], err)
	}
	fresh := tcpnet.NewServer()
	go func() { _ = fresh.Serve(ln) }()
	t.Cleanup(func() { _ = fresh.Close() })

	rep, err = ix.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicaMissing != rep.Leaves || rep.ReplicaRestored != rep.Leaves {
		t.Fatalf("repair pass = %+v: want every one of the %d leaves restored", rep, rep.Leaves)
	}
	if rep.Clean() {
		t.Fatal("a restoring pass must not report clean")
	}

	// The next pass finds full replication again.
	rep, err = ix.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.ReplicaMissing != 0 {
		t.Fatalf("post-repair scrub not clean: %s", rep)
	}
	// And every query still answers from the healed cluster.
	for i := 0; i < 16; i++ {
		if _, _, err := ix.SearchContext(ctx, (float64(i)+0.5)/16); err != nil {
			t.Fatalf("get after heal: %v", err)
		}
	}
}

// TestScrubRereplicationOffByDefault pins the cost-model guarantee: with
// Rereplicate unset a scrub over a replicated cluster issues zero
// membership probes and its report carries zero replica fields.
func TestScrubRereplicationOffByDefault(t *testing.T) {
	ctx := context.Background()
	_, _, ix := startReplicatedIndex(t, 3, 2, Config{SplitThreshold: 4, Depth: 20})
	if _, err := ix.InsertContext(ctx, record.Record{Key: 0.5, Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	rep, err := ix.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicaProbes != 0 || rep.ReplicaMissing != 0 || rep.ReplicaRestored != 0 {
		t.Fatalf("re-replication ran without opt-in: %+v", rep)
	}
}

func TestClusterStatusFacade(t *testing.T) {
	ctx := context.Background()
	_, _, ix := startReplicatedIndex(t, 3, 2, Config{SplitThreshold: 4, Depth: 20})
	st, err := ix.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 3 {
		t.Fatalf("status members = %d, want 3", len(st.Members))
	}
	for _, m := range st.Members {
		if m.State != dht.MemberAlive {
			t.Fatalf("%s reported %s, want alive", m.Addr, m.State)
		}
	}

	// Substrates without a membership plane fail typed.
	local, err := New(dht.NewLocal(), Config{SplitThreshold: 4, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.ClusterStatus(ctx); !errors.Is(err, ErrNoCluster) {
		t.Fatalf("local substrate status err = %v, want ErrNoCluster", err)
	}
}
