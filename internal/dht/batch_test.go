package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"lht/internal/metrics"
)

// scriptedBatcher is a Local whose batched gets and puts fail chosen keys
// with a transient fault a configured number of times, recording the key
// set of every batch call — the probe for failed-subset retry behavior.
type scriptedBatcher struct {
	*Local

	mu       sync.Mutex
	failures map[string]int // remaining transient failures per key
	getCalls [][]string
	putCalls [][]string
}

func newScriptedBatcher(failures map[string]int) *scriptedBatcher {
	return &scriptedBatcher{Local: NewLocal(), failures: failures}
}

func (s *scriptedBatcher) fail(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failures[key] > 0 {
		s.failures[key]--
		return true
	}
	return false
}

func (s *scriptedBatcher) GetBatch(ctx context.Context, keys []string) ([]Value, []error) {
	s.mu.Lock()
	s.getCalls = append(s.getCalls, append([]string(nil), keys...))
	s.mu.Unlock()
	vals, errs := s.Local.GetBatch(ctx, keys)
	for i, k := range keys {
		if s.fail(k) {
			vals[i], errs[i] = nil, MarkTransient(fmt.Errorf("scripted fault on %q", k))
		}
	}
	return vals, errs
}

func (s *scriptedBatcher) PutBatch(ctx context.Context, kvs []KV) []error {
	keys := make([]string, len(kvs))
	errs := make([]error, len(kvs))
	var ok []KV
	var okIdx []int
	for i, kv := range kvs {
		keys[i] = kv.Key
		if s.fail(kv.Key) {
			errs[i] = MarkTransient(fmt.Errorf("scripted fault on %q", kv.Key))
			continue
		}
		ok = append(ok, kv)
		okIdx = append(okIdx, i)
	}
	s.mu.Lock()
	s.putCalls = append(s.putCalls, keys)
	s.mu.Unlock()
	for j, err := range s.Local.PutBatch(ctx, ok) {
		if err != nil {
			errs[okIdx[j]] = err
		}
	}
	return errs
}

// TestPolicyBatchRetriesOnlyFailedSubset is the acceptance scenario for
// the batch plane's policy composition: a batch of three keys where one
// key fails once and another twice must re-issue exactly the failed
// subset each round, with every attempt charged as a lookup by the
// instrumentation below the policy.
func TestPolicyBatchRetriesOnlyFailedSubset(t *testing.T) {
	ctx := context.Background()
	fake := newScriptedBatcher(map[string]int{"B": 1, "C": 2})
	for _, k := range []string{"A", "B", "C"} {
		if err := fake.Local.Put(ctx, k, "v-"+k); err != nil {
			t.Fatal(err)
		}
	}
	c := &metrics.Counters{}
	d := WithPolicy(NewInstrumented(fake, c), fastPolicy(c))

	vals, errs := d.GetBatch(ctx, []string{"A", "B", "C"})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	for i, k := range []string{"A", "B", "C"} {
		if vals[i] != "v-"+k {
			t.Fatalf("slot %d = %v, want v-%s", i, vals[i], k)
		}
	}

	wantCalls := [][]string{{"A", "B", "C"}, {"B", "C"}, {"C"}}
	if len(fake.getCalls) != len(wantCalls) {
		t.Fatalf("got %d batch calls %v, want %v", len(fake.getCalls), fake.getCalls, wantCalls)
	}
	for i, call := range fake.getCalls {
		if fmt.Sprint(call) != fmt.Sprint(wantCalls[i]) {
			t.Fatalf("call %d = %v, want %v", i, call, wantCalls[i])
		}
	}

	s := c.Snapshot().Flat()
	if s.Lookups != 6 {
		t.Errorf("Lookups = %d, want 6 (3+2+1: every attempt charged)", s.Lookups)
	}
	if s.BatchOps != 3 || s.BatchedKeys != 6 {
		t.Errorf("BatchOps/BatchedKeys = %d/%d, want 3/6", s.BatchOps, s.BatchedKeys)
	}
	if s.Retries != 3 {
		t.Errorf("Retries = %d, want 3 (two slots round 1, one slot round 2)", s.Retries)
	}
	if got := s.RoundTrips(); got != 3 {
		t.Errorf("RoundTrips = %d, want 3", got)
	}
}

// TestPolicyBatchExhaustion: a key that never stops failing surfaces
// ErrRetriesExhausted in its slot only; healthy keys still succeed.
func TestPolicyBatchExhaustion(t *testing.T) {
	ctx := context.Background()
	fake := newScriptedBatcher(map[string]int{"B": 1000})
	c := &metrics.Counters{}
	d := WithPolicy(NewInstrumented(fake, c), fastPolicy(c))

	errs := d.PutBatch(ctx, []KV{{Key: "A", Val: 1}, {Key: "B", Val: 2}})
	if errs[0] != nil {
		t.Fatalf("healthy slot: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrRetriesExhausted) || !IsTransient(errs[1]) {
		t.Fatalf("exhausted slot = %v, want ErrRetriesExhausted and transient", errs[1])
	}
	if v, err := fake.Local.Get(ctx, "A"); err != nil || v != 1 {
		t.Fatalf("A = %v, %v", v, err)
	}
	// 4 attempts for B (1 + 3 retries), 1 for A.
	if s := c.Snapshot().Flat(); s.Lookups != 5 || s.Retries != 3 {
		t.Errorf("Lookups/Retries = %d/%d, want 5/3", s.Lookups, s.Retries)
	}
}

// TestWithoutBatchHidesBatcher: the wrapper must strip the native batch
// plane so DoGetBatch/DoPutBatch decompose per-op.
func TestWithoutBatchHidesBatcher(t *testing.T) {
	ctx := context.Background()
	inner := NewLocal()
	if _, ok := any(inner).(Batcher); !ok {
		t.Fatal("Local must implement Batcher")
	}
	stripped := WithoutBatch(inner)
	if _, ok := stripped.(Batcher); ok {
		t.Fatal("WithoutBatch result must not implement Batcher")
	}
	// Charging through Instrumented: per-op fallback counts lookups but
	// no batch ops.
	c := &metrics.Counters{}
	d := NewInstrumented(stripped, c)
	if errs := DoPutBatch(ctx, d, []KV{{Key: "a", Val: 1}, {Key: "b", Val: 2}}); errs[0] != nil || errs[1] != nil {
		t.Fatalf("fallback PutBatch: %v", errs)
	}
	vals, errs := DoGetBatch(ctx, d, []string{"a", "b", "missing"})
	if errs[0] != nil || errs[1] != nil || !errors.Is(errs[2], ErrNotFound) {
		t.Fatalf("fallback GetBatch errs: %v", errs)
	}
	if vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("fallback GetBatch vals: %v", vals)
	}
	s := c.Snapshot().Flat()
	if s.Lookups != 5 || s.FailedGets != 1 {
		t.Errorf("Lookups/FailedGets = %d/%d, want 5/1", s.Lookups, s.FailedGets)
	}
	if s.BatchOps != 0 || s.BatchedKeys != 0 {
		t.Errorf("per-op fallback tallied batches: %d/%d", s.BatchOps, s.BatchedKeys)
	}
	if got := s.RoundTrips(); got != 5 {
		t.Errorf("RoundTrips = %d, want 5 (no batching, one per lookup)", got)
	}
}

// TestInstrumentedNativeBatchCharging: a native batch charges one lookup
// per key plus the batch tallies, and failed slots count as failed gets.
func TestInstrumentedNativeBatchCharging(t *testing.T) {
	ctx := context.Background()
	c := &metrics.Counters{}
	d := NewInstrumented(NewLocal(), c)
	if errs := DoPutBatch(ctx, d, []KV{{Key: "a", Val: 1}, {Key: "b", Val: 2}}); errs[0] != nil || errs[1] != nil {
		t.Fatalf("PutBatch: %v", errs)
	}
	_, errs := DoGetBatch(ctx, d, []string{"a", "b", "missing"})
	if !errors.Is(errs[2], ErrNotFound) {
		t.Fatalf("missing slot = %v", errs[2])
	}
	s := c.Snapshot().Flat()
	if s.Lookups != 5 || s.FailedGets != 1 {
		t.Errorf("Lookups/FailedGets = %d/%d, want 5/1", s.Lookups, s.FailedGets)
	}
	if s.BatchOps != 2 || s.BatchedKeys != 5 {
		t.Errorf("BatchOps/BatchedKeys = %d/%d, want 2/5", s.BatchOps, s.BatchedKeys)
	}
	if got := s.RoundTrips(); got != 2 {
		t.Errorf("RoundTrips = %d, want 2 (one per batch)", got)
	}
}
