package tcpnet

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"lht/internal/dht"
	"lht/internal/hashring"
)

// Client implements dht.DHT over a static set of tcpnet servers: keys are
// mapped to nodes with consistent hashing on the same 64-bit circle the
// Chord substrate uses, so each node owns the arc ending at its hashed
// address. It is safe for concurrent use; each node connection carries
// one request at a time.
//
// Contexts turn into real socket deadlines: a deadline on the context
// bounds the dial and every read/write of that request, and cancellation
// interrupts an in-flight round trip by closing its connection. Transport
// failures are marked transient (dht.IsTransient) so a policy wrapper can
// retry them; the next attempt redials lazily.
type Client struct {
	nodes []*nodeConn // sorted by ring ID
}

var _ dht.DHT = (*Client)(nil)

// nodeConn is one node's connection state with lazy (re)dialing.
type nodeConn struct {
	id   hashring.ID
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial builds a client for the given node addresses with no deadline; see
// DialContext.
func Dial(addrs []string) (*Client, error) {
	return DialContext(context.Background(), addrs)
}

// DialContext builds a client for the given node addresses and verifies
// each node answers a ping. The context bounds the verification pings;
// later operations carry their own contexts.
func DialContext(ctx context.Context, addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("tcpnet: no node addresses")
	}
	c := &Client{}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if seen[a] {
			return nil, fmt.Errorf("tcpnet: duplicate node %q", a)
		}
		seen[a] = true
		c.nodes = append(c.nodes, &nodeConn{id: hashring.HashAddr(a), addr: a})
	}
	sort.Slice(c.nodes, func(i, j int) bool { return c.nodes[i].id < c.nodes[j].id })
	for _, n := range c.nodes {
		if _, err := n.roundTrip(ctx, request{Op: opPing}); err != nil {
			return nil, fmt.Errorf("tcpnet: ping %q: %w", n.addr, err)
		}
	}
	return c, nil
}

// Close tears down all connections.
func (c *Client) Close() error {
	var first error
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.conn != nil {
			if err := n.conn.Close(); err != nil && first == nil {
				first = err
			}
			n.conn = nil
		}
		n.mu.Unlock()
	}
	return first
}

// owner returns the node responsible for key: the first node clockwise
// from hash(key).
func (c *Client) owner(key string) *nodeConn {
	h := hashring.HashKey(key)
	i := sort.Search(len(c.nodes), func(i int) bool { return c.nodes[i].id >= h })
	if i == len(c.nodes) {
		i = 0
	}
	return c.nodes[i]
}

// deadline translates the context into a socket deadline: the context's
// deadline when set, otherwise none (the zero time clears any previous
// per-request deadline on a reused connection).
func deadline(ctx context.Context) time.Time {
	if d, ok := ctx.Deadline(); ok {
		return d
	}
	return time.Time{}
}

// roundTrip sends one request and reads its response, redialing a broken
// connection once. The context's deadline applies to the dial and to the
// encode/decode of this request; if the context is cancelled mid-flight
// the connection is closed, which unblocks the socket I/O.
func (n *nodeConn) roundTrip(ctx context.Context, req request) (response, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return response{}, err
	}
	var lastErr error
	// One reconnect attempt per call: a broken connection surfaces as a
	// decode/encode error on the first try.
	for attempt := 0; attempt < 2; attempt++ {
		if n.conn == nil {
			var d net.Dialer
			conn, err := d.DialContext(ctx, "tcp", n.addr)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return response{}, cerr
				}
				return response{}, dht.MarkTransient(err)
			}
			n.conn = conn
			n.enc = gob.NewEncoder(conn)
			n.dec = gob.NewDecoder(conn)
		}
		_ = n.conn.SetDeadline(deadline(ctx))

		// Cancellation support: closing the conn unblocks gob I/O.
		watchDone := make(chan struct{})
		conn := n.conn
		go func() {
			select {
			case <-ctx.Done():
				_ = conn.Close()
			case <-watchDone:
			}
		}()

		var resp response
		err := n.enc.Encode(req)
		if err == nil {
			err = n.dec.Decode(&resp)
		}
		close(watchDone)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		_ = n.conn.Close()
		n.conn = nil
		if cerr := ctx.Err(); cerr != nil {
			return response{}, cerr
		}
	}
	return response{}, dht.MarkTransient(
		fmt.Errorf("tcpnet: node %q unreachable: %w", n.addr, lastErr))
}

func (c *Client) do(ctx context.Context, key string, req request) (response, error) {
	resp, err := c.owner(key).roundTrip(ctx, req)
	if err != nil {
		return response{}, err
	}
	switch resp.Err {
	case "":
		return resp, nil
	case errNotFound:
		return response{}, dht.ErrNotFound
	default:
		return response{}, fmt.Errorf("tcpnet: server error: %s", resp.Err)
	}
}

// Get implements dht.DHT.
func (c *Client) Get(ctx context.Context, key string) (dht.Value, error) {
	resp, err := c.do(ctx, key, request{Op: opGet, Key: key})
	if err != nil {
		return nil, err
	}
	return decodeValue(resp.Val)
}

// Put implements dht.DHT.
func (c *Client) Put(ctx context.Context, key string, v dht.Value) error {
	data, err := encodeValue(v)
	if err != nil {
		return err
	}
	_, err = c.do(ctx, key, request{Op: opPut, Key: key, Val: data})
	return err
}

// Take implements dht.DHT.
func (c *Client) Take(ctx context.Context, key string) (dht.Value, error) {
	resp, err := c.do(ctx, key, request{Op: opTake, Key: key})
	if err != nil {
		return nil, err
	}
	return decodeValue(resp.Val)
}

// Remove implements dht.DHT.
func (c *Client) Remove(ctx context.Context, key string) error {
	_, err := c.do(ctx, key, request{Op: opRemove, Key: key})
	return err
}

// Write implements dht.DHT: the owning node rewrites the value in place.
func (c *Client) Write(ctx context.Context, key string, v dht.Value) error {
	data, err := encodeValue(v)
	if err != nil {
		return err
	}
	_, err = c.do(ctx, key, request{Op: opWrite, Key: key, Val: data})
	return err
}

// NodeAddrs returns the member addresses in ring order.
func (c *Client) NodeAddrs() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.addr
	}
	return out
}
