package dht

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// BreakerState enumerates the circuit-breaker phases. A breaker guards
// one downstream peer: Closed passes traffic through, Open fast-fails it
// for a cooldown window, and HalfOpen admits exactly one probe whose
// outcome decides between re-opening (with a longer cooldown) and
// closing again.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// UnavailableError is the typed fast-fail a caller receives when a
// breaker is open: the peer was not contacted at all. It chains to
// ErrTransient so the policy layer's retry loop can outlive a cooldown
// the same way it outlives any other transient fault, and it carries the
// fault that tripped the breaker for diagnostics.
type UnavailableError struct {
	Addr  string    // peer the breaker guards
	Until time.Time // earliest instant a probe will be admitted
	Err   error     // last failure that opened the breaker (may be nil)
}

func (e *UnavailableError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("dht: peer %s unavailable (breaker open, last error: %v)", e.Addr, e.Err)
	}
	return fmt.Sprintf("dht: peer %s unavailable (breaker open)", e.Addr)
}

func (e *UnavailableError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrTransient, e.Err}
	}
	return []error{ErrTransient}
}

// IsUnavailable reports whether err (anywhere in its chain) is a
// breaker fast-fail, letting failover paths distinguish "skipped an
// open peer" from "contacted a peer and it failed".
func IsUnavailable(err error) bool {
	var ue *UnavailableError
	return errors.As(err, &ue)
}

// BreakerConfig tunes one Breaker. The zero value is usable: defaults
// are applied by NewBreaker.
type BreakerConfig struct {
	// Threshold is the run of consecutive qualifying failures that trips
	// a closed breaker open. Default 3.
	Threshold int

	// Cooldown is the first open window. Each consecutive re-open (a
	// failed half-open probe) doubles it, capped at MaxCooldown, and the
	// realized window is jittered uniformly over [d/2, d) so a fleet of
	// breakers tripped together does not probe in lockstep.
	// Default 250ms.
	Cooldown time.Duration

	// MaxCooldown caps the exponential growth. Default 5s.
	MaxCooldown time.Duration

	// Seed feeds the jitter stream, making open windows replayable in
	// tests. Zero means seed from the breaker's identity-free default.
	Seed int64

	// Clock supplies the current time; nil means time.Now. Tests inject
	// a fake to step through cooldowns without sleeping.
	Clock func() time.Time

	// OnOpen, when non-nil, is called (under the breaker's lock) on
	// every Closed/HalfOpen -> Open transition. Callers hang metrics
	// counters here.
	OnOpen func()
}

// Breaker is a per-peer circuit breaker: consecutive transport failures
// open it, an open breaker fast-fails callers until a capped, jittered,
// exponentially growing cooldown elapses, and the first caller after the
// cooldown is admitted as the half-open probe whose result closes or
// re-opens the circuit. Safe for concurrent use.
//
// The breaker deliberately has no background goroutine: state advances
// only inside Allow/Success/Failure, so an idle client holds no timers
// and Close has nothing to reap.
type Breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	rng     *rand.Rand
	state   BreakerState
	fails   int       // consecutive failures while closed
	trips   int       // consecutive opens (exponential backoff input)
	until   time.Time // open window end
	probing bool      // the single half-open slot is taken
	lastErr error     // failure that opened the breaker
}

// NewBreaker returns a Breaker with cfg's zero fields defaulted.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 250 * time.Millisecond
	}
	if cfg.MaxCooldown <= 0 {
		cfg.MaxCooldown = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Breaker{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Allow reports whether a call to the guarded peer may proceed. Closed
// always admits. Open fast-fails until the cooldown elapses; the first
// Allow after that flips to HalfOpen and admits the caller as the
// probe, while concurrent callers keep fast-failing until the probe
// settles the slot.
func (b *Breaker) Allow() bool {
	ok, _ := b.AllowProbe()
	return ok
}

// AllowProbe is Allow, additionally reporting whether this caller was
// admitted as the half-open probe. The probe holder owns the slot and
// must settle it: Success or Failure decide the circuit, and CancelProbe
// relinquishes the slot when the attempt ended with no verdict (a
// cancelled context, say) — otherwise the breaker would stay half-open
// with the slot claimed forever, rejecting every later caller.
func (b *Breaker) AllowProbe() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.cfg.Clock().Before(b.until) {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true
	default: // BreakerHalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// Success records a completed call: the peer answered (even with an
// application-level miss), so the circuit closes and the backoff run
// resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.trips = 0
	b.probing = false
	b.lastErr = nil
}

// Failure records a qualifying transport failure. While closed it
// counts toward the trip threshold; a half-open probe failure re-opens
// immediately with the next (doubled, capped, jittered) cooldown.
func (b *Breaker) Failure(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.open(err)
		}
	case BreakerHalfOpen:
		b.open(err)
	case BreakerOpen:
		// A straggler from before the trip; the window is already set.
	}
}

// CancelProbe relinquishes the half-open probe slot with no verdict: the
// admitted probe was cancelled mid-flight (a hedge losing its race, a
// caller walking away), so it will never report Success or Failure. The
// breaker returns to Open with its existing — already elapsed — window,
// so the next caller is admitted as a fresh probe immediately. A no-op
// unless the breaker is half-open with the slot taken.
func (b *Breaker) CancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen || !b.probing {
		return
	}
	b.probing = false
	b.state = BreakerOpen
}

// Trip opens the breaker immediately on an external health verdict — a
// bootstrap probe that found the peer dead, for example — without
// waiting for a failure run. The usual half-open probing applies from
// the first cooldown on.
func (b *Breaker) Trip(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return
	}
	b.open(err)
}

// open transitions to Open and schedules the next probe window.
// Caller holds b.mu.
func (b *Breaker) open(err error) {
	b.state = BreakerOpen
	b.fails = 0
	b.probing = false
	b.trips++
	b.lastErr = err
	d := b.cfg.Cooldown << (b.trips - 1)
	if b.trips > 30 || d > b.cfg.MaxCooldown || d <= 0 {
		d = b.cfg.MaxCooldown
	}
	// Jitter uniformly over [d/2, d) so simultaneous trips de-sync.
	d = d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
	b.until = b.cfg.Clock().Add(d)
	if b.cfg.OnOpen != nil {
		b.cfg.OnOpen()
	}
}

// State returns the current phase without advancing it: an Open breaker
// whose cooldown has elapsed still reports Open until an Allow claims
// the probe slot. Failover paths use State to order holders without
// consuming probes.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Unavailable builds the typed fast-fail for a rejected call.
func (b *Breaker) Unavailable(addr string) *UnavailableError {
	b.mu.Lock()
	defer b.mu.Unlock()
	return &UnavailableError{Addr: addr, Until: b.until, Err: b.lastErr}
}

// Backoff reports whether a redial attempt at now falls inside the
// breaker's open window — the shared cooldown the lazy-redial paths
// consult before burning a dial on a peer that just failed.
func (b *Breaker) Backoff() (time.Time, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return time.Time{}, false
	}
	return b.until, b.cfg.Clock().Before(b.until)
}
