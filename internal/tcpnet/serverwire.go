package tcpnet

import (
	"bufio"
	"encoding/binary"
	"net"

	"lht/internal/dht"
)

// errMalformed is the server's reply to a frame whose payload does not
// parse; the connection survives (the frame boundary is intact, only the
// payload was garbage).
const errMalformed = "malformed request"

// handleBinary serves the framed protocol on one connection, after the
// magic has been consumed from br. Requests are processed in arrival
// order into reused buffers — steady-state service allocates only store
// mutations — and responses are flushed only once the read buffer holds
// no further input, so a pipelined burst of requests is answered with one
// write.
func (s *Server) handleBinary(conn net.Conn, br *bufio.Reader) {
	bw := bufio.NewWriterSize(conn, wireBufSize)
	in := getBuf()
	out := getBuf()
	defer func() { putBuf(in); putBuf(out) }()
	for {
		body, err := readFrameBody(br, *in)
		*in = body // keep the (possibly re-grown) backing array pooled
		if err != nil {
			// Framing is broken (EOF, truncation, oversized length):
			// nothing sane can follow, drop the connection.
			return
		}
		*out = s.applyFrame(body, (*out)[:0])
		if _, err := bw.Write(*out); err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// applyFrame serves one request frame body (id + op + payload, at least
// frameHeaderLen bytes, as readFrameBody returns) and appends the complete
// response frame to out. It never panics on garbage payloads — malformed
// requests get a statusErr response.
func (s *Server) applyFrame(body, out []byte) []byte {
	id := binary.BigEndian.Uint64(body[:8])
	op := dht.OpKind(body[8])
	out = append(out, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, byte(op))
	out = s.respond(op, body[frameHeaderLen:], out)
	binary.BigEndian.PutUint32(out[:4], uint32(len(out)-4))
	binary.BigEndian.PutUint64(out[4:12], id)
	return out
}

func appendStatusErr(out []byte, msg string) []byte {
	out = append(out, statusErr)
	return append(out, msg...)
}

// appendCASConflict appends a statusCASConflict response: whether a value
// exists under the contested key, and the winning stored epoch.
func appendCASConflict(out []byte, exists bool, winner uint64) []byte {
	out = append(out, statusCASConflict)
	if exists {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return appendUv(out, winner)
}

// respond appends the status + payload of op's response. Counter
// discipline matches the legacy path exactly (the cost-model oracle pins
// this): every routed op charges one lookup per key, misses charge failed
// gets, Write is free, batches feed the batch counters. Batch payloads
// are validated in full before any counter is charged or key served, so a
// malformed frame has no side effects.
func (s *Server) respond(op dht.OpKind, payload, out []byte) []byte {
	c := cursor{b: payload}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case dht.OpPing:
		if !c.empty() {
			return appendStatusErr(out, errMalformed)
		}
		return append(out, statusOK)

	case dht.OpGet, dht.OpTake:
		key, err := c.lenBytes()
		if err != nil || !c.empty() {
			return appendStatusErr(out, errMalformed)
		}
		s.c.AddLookups(1)
		v, ok := s.store[string(key)]
		if !ok {
			s.c.AddFailedGets(1)
			return append(out, statusNotFound)
		}
		if op == dht.OpTake {
			delete(s.store, string(key))
		}
		out = append(out, statusOK)
		return append(out, v...)

	case dht.OpPut:
		key, err := c.lenBytes()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		s.c.AddLookups(1)
		s.store[string(key)] = append([]byte(nil), c.rest()...)
		return append(out, statusOK)

	case dht.OpPutNewer:
		// Replica propagation of a primary-serialized commit: store unless
		// a strictly newer epoch already landed. Fan-outs of successive
		// commits may arrive out of order; the epoch guard keeps the newest
		// accepted write in place, so a late-arriving older fan-out can
		// never leave this holder durably stale. Charged like OpPut — the
		// cost model sees propagation identically either way.
		key, err := c.lenBytes()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		val := c.rest()
		if len(val) == 0 {
			return appendStatusErr(out, errMalformed)
		}
		s.c.AddLookups(1)
		if cur, ok := s.store[string(key)]; ok && storedEpoch(cur) > storedEpoch(val) {
			return append(out, statusOK) // superseded: keep the newer value
		}
		s.store[string(key)] = append([]byte(nil), val...)
		return append(out, statusOK)

	case dht.OpRemove:
		key, err := c.lenBytes()
		if err != nil || !c.empty() {
			return appendStatusErr(out, errMalformed)
		}
		s.c.AddLookups(1)
		delete(s.store, string(key))
		return append(out, statusOK)

	case dht.OpWrite:
		key, err := c.lenBytes()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		// Free in the cost model: the client already routed here.
		if _, ok := s.store[string(key)]; !ok {
			return append(out, statusNotFound)
		}
		s.store[string(key)] = append([]byte(nil), c.rest()...)
		return append(out, statusOK)

	case dht.OpPutIf, dht.OpWriteIf:
		key, err := c.lenBytes()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		ifEpoch, err := c.uvarint()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		val := c.rest()
		if len(val) == 0 {
			return appendStatusErr(out, errMalformed)
		}
		if op == dht.OpPutIf {
			s.c.AddLookups(1) // WriteIf, like Write, is free
		}
		cur, ok := s.store[string(key)]
		if !ok {
			if op == dht.OpWriteIf {
				return append(out, statusNotFound) // matches Write
			}
			return appendCASConflict(out, false, 0)
		}
		if w := storedEpoch(cur); w != ifEpoch {
			return appendCASConflict(out, true, w)
		}
		s.store[string(key)] = append([]byte(nil), val...)
		return append(out, statusOK)

	case dht.OpCreateIf:
		key, err := c.lenBytes()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		val := c.rest()
		if len(val) == 0 {
			return appendStatusErr(out, errMalformed)
		}
		s.c.AddLookups(1)
		if cur, ok := s.store[string(key)]; ok {
			return appendCASConflict(out, true, storedEpoch(cur))
		}
		s.store[string(key)] = append([]byte(nil), val...)
		return append(out, statusOK)

	case dht.OpRemoveIf:
		key, err := c.lenBytes()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		ifEpoch, err := c.uvarint()
		if err != nil || !c.empty() {
			return appendStatusErr(out, errMalformed)
		}
		s.c.AddLookups(1)
		cur, ok := s.store[string(key)]
		if !ok {
			return append(out, statusOK) // already gone: the removal is done
		}
		if w := storedEpoch(cur); w != ifEpoch {
			return appendCASConflict(out, true, w)
		}
		delete(s.store, string(key))
		return append(out, statusOK)

	case dht.OpGetBatch:
		n, err := c.count()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		cc := c
		for i := 0; i < n; i++ {
			if _, err := cc.lenBytes(); err != nil {
				return appendStatusErr(out, errMalformed)
			}
		}
		if !cc.empty() {
			return appendStatusErr(out, errMalformed)
		}
		s.c.AddLookups(int64(n))
		s.c.AddBatchOps(1)
		s.c.AddBatchedKeys(int64(n))
		out = append(out, statusOK)
		out = appendUv(out, uint64(n))
		for i := 0; i < n; i++ {
			key, _ := c.lenBytes()
			v, ok := s.store[string(key)]
			if !ok {
				s.c.AddFailedGets(1)
				out = append(out, statusNotFound)
				continue
			}
			out = append(out, statusOK)
			out = appendLenBytes(out, v)
		}
		return out

	case dht.OpPutBatch:
		n, err := c.count()
		if err != nil {
			return appendStatusErr(out, errMalformed)
		}
		cc := c
		for i := 0; i < n; i++ {
			if _, err := cc.lenBytes(); err != nil {
				return appendStatusErr(out, errMalformed)
			}
			if _, err := cc.lenBytes(); err != nil {
				return appendStatusErr(out, errMalformed)
			}
		}
		if !cc.empty() {
			return appendStatusErr(out, errMalformed)
		}
		s.c.AddLookups(int64(n))
		s.c.AddBatchOps(1)
		s.c.AddBatchedKeys(int64(n))
		for i := 0; i < n; i++ { // in order: a duplicate key's last pair wins
			key, _ := c.lenBytes()
			val, _ := c.lenBytes()
			s.store[string(key)] = append([]byte(nil), val...)
		}
		out = append(out, statusOK)
		out = appendUv(out, uint64(n))
		for i := 0; i < n; i++ {
			out = append(out, statusOK)
			out = appendUv(out, 0)
		}
		return out

	case dht.OpGossip, dht.OpHintPut, dht.OpStatus:
		return s.respondMembership(op, &c, out)

	default:
		return appendStatusErr(out, "unknown op")
	}
}
