package lht

import (
	"errors"
	"fmt"

	"lht/internal/keyspace"
)

// Config tunes an LHT index. The zero value is invalid; start from
// DefaultConfig.
type Config struct {
	// SplitThreshold is theta_split: the storage capacity of a leaf
	// bucket, counted in record slots, one of which the leaf label
	// occupies (section 9.2). A bucket splits when an insertion brings
	// its weight (records + label slot) up to the threshold, i.e. when
	// its theta-1 real-record capacity is exceeded - the accounting under
	// which the paper derives average alpha = 1/2 + 1/(2*theta). Must be
	// at least 4 so both split halves can hold a record.
	SplitThreshold int

	// MergeThreshold triggers the dual of splitting: when, after a
	// deletion, a leaf and its sibling leaf have combined merged weight
	// strictly below MergeThreshold, they merge into their parent. The
	// paper (section 3.2) merges whenever a subtree drops below
	// theta_split; we default to theta_split/2 for hysteresis so an
	// insert-delete workload at the boundary does not thrash. Set to 0 to
	// disable merging.
	MergeThreshold int

	// Depth is D, the a-priori maximum tree depth in bits (paper section
	// 5: the maximum label length is D+1 characters, i.e. D bits). The
	// lookup binary search runs over prefix lengths 1..D. Must be in
	// [2, keyspace.MaxDepth] (52: the float64 exactness bound). The
	// paper's experiments use 20.
	Depth int

	// ParallelRange executes range-query forwarding concurrently: every
	// independent branch forward runs in its own goroutine, exactly the
	// parallelism the Steps latency metric models, so wall-clock latency
	// over networked substrates matches it. Results and costs are
	// identical to sequential execution. Off by default: over the
	// in-process substrates goroutine overhead exceeds the map accesses
	// it parallelizes.
	ParallelRange bool
}

// DefaultConfig mirrors the paper's experiment defaults: theta_split =
// 100, D = 20, merges enabled with theta_split/2 hysteresis.
func DefaultConfig() Config {
	return Config{
		SplitThreshold: 100,
		MergeThreshold: 50,
		Depth:          20,
	}
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("lht: invalid config")

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SplitThreshold < 4 {
		return fmt.Errorf("%w: SplitThreshold %d < 4", ErrConfig, c.SplitThreshold)
	}
	if c.MergeThreshold < 0 || c.MergeThreshold > c.SplitThreshold {
		return fmt.Errorf("%w: MergeThreshold %d outside [0, SplitThreshold]", ErrConfig, c.MergeThreshold)
	}
	if c.Depth < 2 || c.Depth > keyspace.MaxDepth {
		return fmt.Errorf("%w: Depth %d outside [2, %d]", ErrConfig, c.Depth, keyspace.MaxDepth)
	}
	return nil
}
