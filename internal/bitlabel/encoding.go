package bitlabel

import (
	"encoding/binary"
	"fmt"
)

// MarshalBinary implements encoding.BinaryMarshaler. The format is one
// length byte followed by the bit string as a big-endian uint64, 9 bytes
// total; it is stable and used by the gob codecs of the networked
// substrates.
func (l Label) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 9)
	buf[0] = l.n
	binary.BigEndian.PutUint64(buf[1:], l.val)
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (l *Label) UnmarshalBinary(data []byte) error {
	if len(data) != 9 {
		return fmt.Errorf("%w: binary label has %d bytes, want 9", ErrBadLabel, len(data))
	}
	n := data[0]
	if n > MaxBits {
		return fmt.Errorf("%w: binary label has %d bits", ErrTooDeep, n)
	}
	val := binary.BigEndian.Uint64(data[1:])
	if n < 64 && val>>n != 0 {
		return fmt.Errorf("%w: binary label value wider than %d bits", ErrBadLabel, n)
	}
	if n > 0 && val>>(n-1)&1 != 0 {
		return fmt.Errorf("%w: binary label first bit must be 0", ErrBadLabel)
	}
	l.n = n
	l.val = val
	return nil
}
