package bench

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/workload"
)

// RunBatchAblation is ablation A6: substrate round trips with and without
// the batched operation plane. Both arms run the identical workload — a
// bulk load followed by range queries — on the same substrate; the
// "per-op" arm strips the native batch support with dht.WithoutBatch, so
// every routed key costs its own round trip. Lookups (the paper's
// bandwidth measure) are identical by construction — the run fails if the
// two arms diverge in lookups or produce different trees — so the gap
// between the curves is pure round-trip saving: Lookups - BatchedKeys +
// BatchOps versus Lookups.
//
// The companion result reports round trips per range query during the
// query phase, where the sweep's per-round multi-gets do the batching.
func RunBatchAblation(o Options, dist workload.Dist, sizes []int) (Result, Result, error) {
	o = o.WithDefaults()
	load := Result{
		Name:   "A6",
		Title:  "Bulk-load round trips: batched vs per-op",
		XLabel: "data size",
		YLabel: "round trips",
	}
	query := Result{
		Name:   "A6b",
		Title:  fmt.Sprintf("Range-query round trips (span %.2g): batched vs per-op", 0.1),
		XLabel: "data size",
		YLabel: "round trips per query",
	}

	xs := make([]float64, len(sizes))
	for i, s := range sizes {
		xs[i] = float64(s)
	}

	variants := []struct {
		name  string
		strip bool
	}{
		{"batched", false},
		{"per-op", true},
	}

	loadYs := make([][][]float64, len(variants)) // [variant][trial][size]
	queryYs := make([][][]float64, len(variants))
	for vi := range variants {
		loadYs[vi] = make([][]float64, o.Trials)
		queryYs[vi] = make([][]float64, o.Trials)
	}

	for t := 0; t < o.Trials; t++ {
		for vi := range variants {
			loadYs[vi][t] = make([]float64, 0, len(sizes))
			queryYs[vi][t] = make([]float64, 0, len(sizes))
		}
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		for _, size := range sizes {
			recs := gen.Records(size)
			var (
				trees   [][]byte
				lookups []int64
			)
			for vi, variant := range variants {
				var d dht.DHT = dht.NewLocal()
				if variant.strip {
					d = dht.WithoutBatch(d)
				}
				ix, err := lht.New(d, lht.Config{SplitThreshold: o.Theta, Depth: o.Depth, Aggregate: o.Agg})
				if err != nil {
					return load, query, err
				}
				if _, err := ix.BulkLoad(recs); err != nil {
					return load, query, fmt.Errorf("bench: bulk load (%s): %w", variant.name, err)
				}
				loaded := ix.Metrics().Flat()
				loadYs[vi][t] = append(loadYs[vi][t], float64(loaded.RoundTrips()))

				// A fresh, identically seeded generator per arm: both arms
				// must issue the exact same queries.
				qgen := workload.NewGenerator(dist, o.Seed+int64(t)+500)
				for q := 0; q < o.Queries; q++ {
					lo, hi := qgen.RangeQuery(0.1)
					if _, _, err := ix.Range(lo, hi); err != nil {
						return load, query, fmt.Errorf("bench: range (%s): %w", variant.name, err)
					}
				}
				delta := ix.Metrics().Flat().Sub(loaded)
				queryYs[vi][t] = append(queryYs[vi][t], float64(delta.RoundTrips())/float64(o.Queries))

				// Oracle check: both arms must agree on bandwidth and tree
				// bytes — batching may only change round trips.
				leaves, err := ix.Leaves()
				if err != nil {
					return load, query, err
				}
				var buf bytes.Buffer
				if err := gob.NewEncoder(&buf).Encode(leaves); err != nil {
					return load, query, err
				}
				trees = append(trees, buf.Bytes())
				lookups = append(lookups, loaded.Lookups+delta.Lookups)
			}
			if !bytes.Equal(trees[0], trees[1]) {
				return load, query, fmt.Errorf("bench: batched and per-op trees diverge at size %d", size)
			}
			if lookups[0] != lookups[1] {
				return load, query, fmt.Errorf("bench: lookup counts diverge at size %d: %d vs %d",
					size, lookups[0], lookups[1])
			}
		}
	}

	for vi, variant := range variants {
		load.Series = append(load.Series, meanSeries("LHT "+variant.name, xs, loadYs[vi]))
		query.Series = append(query.Series, meanSeries("LHT "+variant.name, xs, queryYs[vi]))
	}
	return load, query, nil
}
