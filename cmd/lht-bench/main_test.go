package main

import (
	"context"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	base := []string{"-trials", "1", "-queries", "20", "-minexp", "8", "-maxexp", "10"}
	if err := run(context.Background(), append(base, args...), &out); err != nil {
		t.Fatalf("run(context.Background(), %v): %v", args, err)
	}
	return out.String()
}

func TestRunSingleExperiment(t *testing.T) {
	out := runBench(t, "-experiments", "thm3")
	for _, want := range []string{"Thm 3", "min query", "max query", "2^8", "2^10"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	out := runBench(t, "-experiments", "all")
	for _, want := range []string{"Fig 6a", "Fig 6b", "Fig 7a", "Fig 7b", "Fig 8a", "Fig 8b",
		"Fig 9a", "Fig 9b", "Fig 10a", "Fig 10b", "Eq 3", "Thm 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCacheAblation(t *testing.T) {
	out := runBench(t, "-experiments", "a4")
	for _, want := range []string{"Ablation A4", "cached lookups/query", "uncached lookups/query", "cache hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	out := runBench(t, "-experiments", "thm3", "-csv")
	if !strings.Contains(out, `x,"min query","max query"`) {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "256,1,1") {
		t.Errorf("CSV row missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-experiments", "nope"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run(context.Background(), []string{"-experiments", ""}, &out); err == nil {
		t.Error("empty selection should fail")
	}
	if err := run(context.Background(), []string{"-minexp", "12", "-maxexp", "8"}, &out); err == nil {
		t.Error("inverted size range should fail")
	}
	if err := run(context.Background(), []string{"-badflag"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}
