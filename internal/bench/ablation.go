package bench

import (
	"fmt"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/record"
	"lht/internal/workload"
)

// The drivers in this file are ablations of LHT design choices that
// DESIGN.md calls out: they do not reproduce paper figures but quantify
// why the design is the way it is.

// RunLookupAblation compares Algorithm 2's binary search over candidate
// names against a naive top-down linear walk of the same name sequence,
// across data sizes. Expected shape: the linear walk's cost grows with
// tree depth (about half the leaf depth), while the binary search stays
// near log2(D/2) - the gap is what the paper's lookup algorithm buys.
func RunLookupAblation(o Options, dist workload.Dist, sizes []int) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name:   "Ablation A1",
		Title:  fmt.Sprintf("Lookup strategy: binary search vs linear descent (%s data, D=%d)", dist, o.Depth),
		XLabel: "data size (records)",
		YLabel: "DHT-lookups per lookup",
	}
	maxSize := sizes[len(sizes)-1]
	binYs := make([][]float64, o.Trials)
	linYs := make([][]float64, o.Trials)
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(maxSize)
		queries := gen.LookupKeys(o.Queries)
		ix, err := o.newLHT(o.Theta, o.Depth)
		if err != nil {
			return res, err
		}
		var brow, lrow []float64
		err = grow(recs, sizes,
			func(r record.Record) error { _, e := ix.Insert(r); return e },
			func(int) {
				var btot, ltot int
				for _, q := range queries {
					_, bc, err2 := ix.LookupBucket(q)
					if err2 != nil {
						err = err2
						return
					}
					_, lc, err2 := ix.LookupBucketLinear(q)
					if err2 != nil {
						err = err2
						return
					}
					btot += bc.Lookups
					ltot += lc.Lookups
				}
				brow = append(brow, float64(btot)/float64(len(queries)))
				lrow = append(lrow, float64(ltot)/float64(len(queries)))
			})
		if err != nil {
			return res, err
		}
		binYs[t], linYs[t] = brow, lrow
	}
	xs := float64s(sizes)
	res.Series = append(res.Series,
		meanSeries("binary search (Alg 2)", xs, binYs),
		meanSeries("linear descent", xs, linYs))
	return res, nil
}

// RunMergeAblation quantifies the merge-threshold hysteresis: under a
// steady churn workload (delete a batch, insert a batch), the paper's
// "merge whenever a subtree drops below theta" rule makes leaves at the
// boundary oscillate between splitting and merging, while a threshold of
// theta/2 (this implementation's default) damps the oscillation, and 0
// disables merging entirely (no maintenance, but empty leaves accumulate).
// Reported: maintenance DHT-lookups per churn operation, and final leaf
// count, per merge-threshold setting.
func RunMergeAblation(o Options, dist workload.Dist, size, churnOps int) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name:   "Ablation A2",
		Title:  fmt.Sprintf("Merge hysteresis under churn (theta=%d, %d records, %d churn ops)", o.Theta, size, churnOps),
		XLabel: "merge threshold (fraction of theta)",
		YLabel: "maintenance lookups per churn op / leaves",
	}
	fractions := []float64{0, 0.5, 1}
	maintYs := make([][]float64, o.Trials)
	leafYs := make([][]float64, o.Trials)
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(size)
		var mrow, lrow []float64
		for _, f := range fractions {
			cfg := lht.Config{
				SplitThreshold: o.Theta,
				MergeThreshold: int(f * float64(o.Theta)),
				Depth:          o.Depth,
				Aggregate:      o.Agg,
			}
			ix, err := lht.New(dht.NewLocal(), cfg)
			if err != nil {
				return res, err
			}
			live := make([]record.Record, 0, len(recs))
			for _, r := range recs {
				if _, err := ix.Insert(r); err != nil {
					return res, err
				}
				live = append(live, r)
			}
			before := ix.Metrics()
			// Churn: remove and reinsert records in waves, keeping the
			// population constant - the regime where merge thresholds
			// matter.
			extra := workload.NewGenerator(dist, o.Seed+int64(t)+1000)
			for op := 0; op < churnOps; op++ {
				victim := op % len(live)
				if _, err := ix.Delete(live[victim].Key); err != nil {
					return res, fmt.Errorf("churn delete: %w", err)
				}
				nr := record.Record{Key: extra.Key(), Value: live[victim].Value}
				for record.FindByKey(live, nr.Key) >= 0 {
					nr.Key = extra.Key()
				}
				if _, err := ix.Insert(nr); err != nil {
					return res, fmt.Errorf("churn insert: %w", err)
				}
				live[victim] = nr
			}
			maint := ix.Metrics().Sub(before).Flat()
			leaves, err := ix.Leaves()
			if err != nil {
				return res, err
			}
			mrow = append(mrow, float64(maint.MaintLookups)/float64(churnOps))
			lrow = append(lrow, float64(len(leaves)))
		}
		maintYs[t], leafYs[t] = mrow, lrow
	}
	res.Series = append(res.Series,
		meanSeries("maint lookups/op", fractions, maintYs),
		meanSeries("final leaves", fractions, leafYs))
	return res, nil
}

// RunThetaSweep quantifies the bucket-capacity tradeoff: larger theta
// means fewer, fatter buckets - range queries touch fewer peers
// (bandwidth falls) but every split moves more data. The paper fixes
// theta=100; this sweep shows what that choice trades.
func RunThetaSweep(o Options, dist workload.Dist, size int, thetas []int, span float64) (Result, error) {
	o = o.WithDefaults()
	res := Result{
		Name:   "Ablation A3",
		Title:  fmt.Sprintf("theta_split tradeoff (%d records, span %.2g)", size, span),
		XLabel: "theta_split",
		YLabel: "per-query lookups / per-insert moved slots",
	}
	rangeYs := make([][]float64, o.Trials)
	movedYs := make([][]float64, o.Trials)
	lookupYs := make([][]float64, o.Trials)
	for t := 0; t < o.Trials; t++ {
		gen := workload.NewGenerator(dist, o.Seed+int64(t))
		recs := gen.Records(size)
		var rrow, mrow, lrow []float64
		for _, theta := range thetas {
			ix, err := o.newLHT(theta, o.Depth)
			if err != nil {
				return res, err
			}
			for _, r := range recs {
				if _, err := ix.Insert(r); err != nil {
					return res, err
				}
			}
			var rtot, ltot int
			for q := 0; q < o.Queries; q++ {
				lo, hi := gen.RangeQuery(span)
				_, cost, err := ix.Range(lo, hi)
				if err != nil {
					return res, err
				}
				rtot += cost.Lookups
				_, lcost, err := ix.LookupBucket(gen.Key())
				if err != nil {
					return res, err
				}
				ltot += lcost.Lookups
			}
			s := ix.Metrics().Flat()
			rrow = append(rrow, float64(rtot)/float64(o.Queries))
			lrow = append(lrow, float64(ltot)/float64(o.Queries))
			mrow = append(mrow, float64(s.MovedRecords)/float64(size))
		}
		rangeYs[t], movedYs[t], lookupYs[t] = rrow, mrow, lrow
	}
	xs := make([]float64, len(thetas))
	for i, th := range thetas {
		xs[i] = float64(th)
	}
	res.Series = append(res.Series,
		meanSeries("range lookups/query", xs, rangeYs),
		meanSeries("exact lookups/query", xs, lookupYs),
		meanSeries("moved slots/insert", xs, movedYs))
	return res, nil
}
