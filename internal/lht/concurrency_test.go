package lht

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

// TestConcurrentReaders backs the documented concurrency contract: any
// number of query operations may run in parallel (run with -race), with
// and without the leaf cache (whose LRU is shared mutable state all
// readers touch).
func TestConcurrentReaders(t *testing.T) {
	t.Run("uncached", func(t *testing.T) {
		testConcurrentReaders(t, Config{SplitThreshold: 16, MergeThreshold: 8, Depth: 20})
	})
	t.Run("cached", func(t *testing.T) {
		testConcurrentReaders(t, Config{SplitThreshold: 16, MergeThreshold: 8, Depth: 20,
			LeafCache: true, LeafCacheSize: 32})
	})
	// ParallelRange layers the batched sweep's intra-query goroutines on
	// top of the inter-query concurrency; with the cache on, every slot
	// of every multi-get notes its bucket in the shared LRU.
	t.Run("cached-parallel", func(t *testing.T) {
		testConcurrentReaders(t, Config{SplitThreshold: 16, MergeThreshold: 8, Depth: 20,
			LeafCache: true, LeafCacheSize: 32, ParallelRange: true})
	})
}

func testConcurrentReaders(t *testing.T, cfg Config) {
	ix, err := New(dht.NewLocal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	keys := make([]float64, 2000)
	for i := range keys {
		keys[i] = rng.Float64()
		if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				switch i % 5 {
				case 0:
					k := keys[rng.Intn(len(keys))]
					if _, _, err := ix.Search(k); err != nil {
						t.Errorf("Search(%v): %v", k, err)
						return
					}
				case 1:
					lo := rng.Float64() * 0.9
					if _, _, err := ix.Range(lo, lo+0.05); err != nil {
						t.Errorf("Range: %v", err)
						return
					}
				case 2:
					if _, _, err := ix.Min(); err != nil {
						t.Errorf("Min: %v", err)
						return
					}
				case 3:
					if _, _, err := ix.Max(); err != nil {
						t.Errorf("Max: %v", err)
						return
					}
				default:
					if _, _, err := ix.Scan(rng.Float64(), 20); err != nil {
						t.Errorf("Scan: %v", err)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestScrubConcurrentWithReaders backs Scrub's documented concurrency
// position: over a consistent tree it performs no writes, so it may run
// alongside any number of queries (run with -race). The cached variant
// additionally races the scrub's bucket fetches against the shared LRU.
func TestScrubConcurrentWithReaders(t *testing.T) {
	for _, cfg := range []Config{
		{SplitThreshold: 16, MergeThreshold: 8, Depth: 20},
		{SplitThreshold: 16, MergeThreshold: 8, Depth: 20, LeafCache: true, LeafCacheSize: 32},
	} {
		name := "uncached"
		if cfg.LeafCache {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			ix, err := New(dht.NewLocal(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(72))
			keys := make([]float64, 1000)
			for i := range keys {
				keys[i] = rng.Float64()
				if _, err := ix.Insert(record.Record{Key: keys[i]}); err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 200; i++ {
						k := keys[rng.Intn(len(keys))]
						if _, _, err := ix.Search(k); err != nil {
							t.Errorf("Search(%v): %v", k, err)
							return
						}
					}
				}(int64(g))
			}
			for s := 0; s < 3; s++ {
				rep, err := ix.Scrub(context.Background())
				if err != nil {
					t.Fatalf("Scrub: %v\n%s", err, rep)
				}
				if !rep.Clean() {
					t.Fatalf("Scrub of consistent tree not clean:\n%s", rep)
				}
			}
			wg.Wait()
		})
	}
}
