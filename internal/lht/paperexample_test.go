package lht

import (
	"context"
	"sync"
	"testing"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/record"
)

// This file replays the paper's worked examples against hand-built trees,
// asserting not only the results but the exact DHT probe sequences the
// paper traces.

// recordingDHT remembers the keys of all Get probes.
type recordingDHT struct {
	dht.DHT
	mu   sync.Mutex
	gets []string
}

func (r *recordingDHT) Get(ctx context.Context, key string) (dht.Value, error) {
	r.mu.Lock()
	r.gets = append(r.gets, key)
	r.mu.Unlock()
	return r.DHT.Get(ctx, key)
}

func (r *recordingDHT) reset() {
	r.mu.Lock()
	r.gets = nil
	r.mu.Unlock()
}

func (r *recordingDHT) probes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.gets))
	copy(out, r.gets)
	return out
}

// buildTree stores a hand-specified set of leaves (by label) in a fresh
// DHT, each under its name, with one record at its interval midpoint so
// "contains" checks behave.
func buildTree(t *testing.T, leaves []string) *recordingDHT {
	t.Helper()
	d := &recordingDHT{DHT: dht.NewLocal()}
	total := 0.0
	for _, ls := range leaves {
		label := bitlabel.MustParse(ls)
		iv := keyspace.IntervalOf(label)
		total += iv.Width()
		b := &Bucket{
			Label:   label,
			Records: []record.Record{{Key: iv.Lo + iv.Width()/2, Value: []byte(ls)}},
		}
		if err := d.DHT.Put(context.Background(), label.Name().Key(), b); err != nil {
			t.Fatal(err)
		}
	}
	if total != 1 {
		t.Fatalf("test tree does not tile [0,1): total width %v", total)
	}
	return d
}

func assertProbes(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("probe sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("probe %d = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestSection5LookupTrace replays the lookup example of section 5: in the
// Fig. 2 tree, looking up 0.9 with D = 14 first tries the prefix
// #0111001 (probing its name #011100, a miss), then #011 (probing #0,
// which returns leaf #01111, not covering 0.9), then resolves at #01110
// (probing its name #0111) - three DHT-gets in all.
func TestSection5LookupTrace(t *testing.T) {
	// Fig. 2's partition tree.
	d := buildTree(t, []string{"#000", "#001", "#010", "#0110", "#01110", "#01111"})
	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 14})
	if err != nil {
		t.Fatal(err)
	}
	d.reset()

	b, cost, err := ix.LookupBucket(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if b.Label.String() != "#01110" {
		t.Fatalf("lookup(0.9) = %s, want #01110", b.Label)
	}
	if cost.Lookups != 3 {
		t.Fatalf("lookup cost = %d DHT-lookups, paper's trace uses 3", cost.Lookups)
	}
	assertProbes(t, d.probes(), []string{"#011100", "#0", "#0111"})
}

// TestSection5MuPrefixClaim verifies the premise of the lookup example:
// lambda(0.4) = #001 in Fig. 2, and every candidate leaf label is a
// prefix of mu(delta, D).
func TestSection5MuPrefixClaim(t *testing.T) {
	d := buildTree(t, []string{"#000", "#001", "#010", "#0110", "#01110", "#01111"})
	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 14})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ix.LookupBucket(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Label.String() != "#001" {
		t.Fatalf("lambda(0.4) = %s, want #001 (Fig. 2)", b.Label)
	}
}

// TestSection62RangeTrace replays the range example of section 6.2: in
// the Fig. 5b tree, the query [0.2, 0.6) starts at the LCA #0 (one get of
// f_n(#0) = "#", reaching leaf #000), then forwards to #00 (leaf #0011)
// and #01 (leaf #0100), and #0011 forwards inward to #001 (leaf #0010).
// Four DHT-gets reach all four result buckets - optimal.
func TestSection62RangeTrace(t *testing.T) {
	// Fig. 5b's tree: six leaves.
	d := buildTree(t, []string{"#000", "#0010", "#0011", "#0100", "#0101", "#011"})
	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 14})
	if err != nil {
		t.Fatal(err)
	}
	d.reset()

	recs, cost, err := ix.Range(0.2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// The records planted at bucket midpoints inside [0.2, 0.6): #000's
	// 0.125 is outside the range, #0010 (0.3125), #0011 (0.4375), #0100
	// (0.5625) inside.
	if len(recs) != 3 {
		t.Fatalf("range returned %d records: %v", len(recs), recs)
	}
	if cost.Lookups != 4 {
		t.Fatalf("range cost = %d DHT-lookups, paper's trace uses 4", cost.Lookups)
	}
	// The probe set, in round order: the sweep's branch probes {#00, #01}
	// go out as one multi-get round, then #0011 forwards inward to #001.
	assertProbes(t, d.probes(), []string{"#", "#00", "#01", "#001"})
	// Latency: the LCA get, then {#00, #01} in parallel, then #001 from
	// inside #0011: three dependent rounds.
	if cost.Steps != 3 {
		t.Fatalf("range steps = %d, want 3", cost.Steps)
	}
}

// TestTheorem3Trace: in any of the example trees, min resolves at key "#"
// and max at key "#0", each with a single probe.
func TestTheorem3Trace(t *testing.T) {
	d := buildTree(t, []string{"#000", "#001", "#010", "#0110", "#01110", "#01111"})
	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 14})
	if err != nil {
		t.Fatal(err)
	}
	d.reset()
	if _, _, err := ix.Min(); err != nil {
		t.Fatal(err)
	}
	assertProbes(t, d.probes(), []string{"#"})
	d.reset()
	rec, _, err := ix.Max()
	if err != nil {
		t.Fatal(err)
	}
	assertProbes(t, d.probes(), []string{"#0"})
	// The max record lives in the rightmost leaf #01111.
	if string(rec.Value) != "#01111" {
		t.Fatalf("max came from %q, want the rightmost leaf", rec.Value)
	}
}

// TestGeneralCaseFallbacks drives Algorithm 4's case 1 (range inside one
// leaf: the f_n(LCA) get misses) and case 3 (the bucket bound to f_n(LCA)
// does not overlap the range).
func TestGeneralCaseFallbacks(t *testing.T) {
	d := buildTree(t, []string{"#000", "#0010", "#0011", "#0100", "#0101", "#011"})
	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 14})
	if err != nil {
		t.Fatal(err)
	}

	// Case 1: [0.3, 0.31) lies inside leaf #0010 and its LCA #0010011 is
	// deeper than the tree, with a name (#00100) no leaf is bound to, so
	// the first get misses and an exact lookup of the lower bound
	// follows.
	d.reset()
	recs, cost, err := ix.Range(0.3, 0.31)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 { // the planted record 0.3125 is outside [0.3,0.31)
		t.Fatalf("case 1 records = %v", recs)
	}
	probes := d.probes()
	if len(probes) < 2 || probes[0] != "#00100" {
		t.Fatalf("case 1 should miss at #00100 then look up: %v", probes)
	}
	if cost.Lookups != len(probes) {
		t.Fatalf("cost %d != probes %d", cost.Lookups, len(probes))
	}

	// Case 3: [0.3, 0.6) straddles 0.5, so its LCA is the root #0 and
	// f_n(#0) = "#" leads to the leftmost leaf #000 ([0, 0.25)), which
	// does not overlap the range; the query then descends through both
	// children. The left descent reaches leaf #0011 via #00, which
	// sweeps left into the partially covered branch #0010: that probe is
	// the one failed lookup section 6.3 budgets for (leaf #0010 is bound
	// to #001, not to its own label), and the fallback succeeds.
	d.reset()
	recs, cost, err = ix.Range(0.3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // midpoints 0.3125, 0.4375, 0.5625
		t.Fatalf("case 3 records = %v", recs)
	}
	assertProbes(t, d.probes(), []string{"#", "#00", "#0010", "#001", "#01"})
	if cost.Lookups != 5 {
		t.Fatalf("case 3 cost = %d lookups, want 5 = B+2 <= B+3 (B=3)", cost.Lookups)
	}
}
