// Package workload generates the datasets and query loads of paper
// section 9.1: uniform and gaussian (mean 1/2, standard deviation 1/6) key
// distributions over [0, 1), plus random range-query spans. Generators are
// seeded so every experiment is reproducible; the paper averages each data
// point over 100 independently generated datasets.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"lht/internal/record"
)

// Dist selects a key distribution.
type Dist int

const (
	// Uniform draws keys uniformly from [0, 1).
	Uniform Dist = iota + 1
	// Gaussian draws keys from N(1/2, (1/6)^2), redrawing the ~0.3% of
	// samples that fall outside [0, 1) (the paper notes about 97% fall
	// inside; clipping by redraw keeps the key domain valid without
	// piling mass at the boundaries).
	Gaussian
	// Zipf draws keys whose fractional positions cluster heavily near 0,
	// a harsher skew than the paper's gaussian, used by the extension
	// experiments and robustness tests.
	Zipf
)

// String names the distribution as the paper's figures do.
func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Zipf:
		return "zipf"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// Generator produces data keys of one distribution from a seeded source.
type Generator struct {
	dist Dist
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewGenerator creates a seeded generator.
func NewGenerator(dist Dist, seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{dist: dist, rng: rng}
	if dist == Zipf {
		g.zipf = rand.NewZipf(rng, 1.5, 1, 1<<20-1)
	}
	return g
}

// Key draws one data key in [0, 1).
func (g *Generator) Key() float64 {
	switch g.dist {
	case Gaussian:
		for {
			k := 0.5 + g.rng.NormFloat64()/6
			if k >= 0 && k < 1 {
				return k
			}
		}
	case Zipf:
		// The Zipf source yields ranks on a 2^20 lattice whose mass piles
		// up at rank 0; uniform sub-bucket jitter spreads each rank over
		// its own lattice cell so drawn keys are continuous (distinct with
		// probability 1) while the cell-level skew is unchanged. Without
		// it, Records' distinct-key rejection loop spins near-forever for
		// large n because most draws collapse onto a handful of lattice
		// points.
		return (float64(g.zipf.Uint64()) + g.rng.Float64()) / (1 << 20)
	default:
		return g.rng.Float64()
	}
}

// Records draws n records with distinct keys; values carry a small
// payload so data movement is nontrivial when serialized.
func (g *Generator) Records(n int) []record.Record {
	seen := make(map[float64]bool, n)
	out := make([]record.Record, 0, n)
	for len(out) < n {
		k := g.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, record.Record{Key: k, Value: []byte(fmt.Sprintf("r%06d", len(out)))})
	}
	return out
}

// RangeQuery draws a random range of the given span: the lower bound is
// uniform in [0, 1-span], as in section 9.4. Spans outside (0, 1) are
// clamped into the key domain — span <= 0 (or NaN) collapses to a point
// range and span >= 1 covers all of [0, 1) — so the result is always a
// valid range with 0 <= lo <= hi <= 1. One uniform draw is consumed on
// every call regardless of clamping, keeping seeded streams aligned
// across span values.
func (g *Generator) RangeQuery(span float64) (lo, hi float64) {
	if math.IsNaN(span) || span < 0 {
		span = 0
	} else if span > 1 {
		span = 1
	}
	lo = g.rng.Float64() * (1 - span)
	return lo, lo + span
}

// LookupKeys draws n uniform query keys (section 9.3 issues 1000 lookups
// for keys uniformly distributed in [0, 1] regardless of data
// distribution).
func (g *Generator) LookupKeys(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.rng.Float64()
	}
	return out
}
