package lht

import (
	"math/rand"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

// TestMultipleClientsShareOneTree verifies the over-DHT property from the
// client side: several Index instances attached to the same substrate see
// one consistent tree, because all state lives in the DHT (the clients
// hold only configuration and counters). Writes are serialized, as the
// concurrency contract requires.
func TestMultipleClientsShareOneTree(t *testing.T) {
	d := dht.NewLocal()
	cfg := Config{SplitThreshold: 8, MergeThreshold: 6, Depth: 20}
	clients := make([]*Index, 3)
	for i := range clients {
		ix, err := New(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = ix
	}

	rng := rand.New(rand.NewSource(91))
	oracle := make(map[float64]bool)
	for i := 0; i < 1500; i++ {
		writer := clients[i%len(clients)]
		k := rng.Float64()
		if rng.Intn(4) == 0 && len(oracle) > 0 {
			for dk := range oracle {
				k = dk
				break
			}
			if _, err := writer.Delete(k); err != nil {
				t.Fatalf("client %d Delete(%v): %v", i%3, k, err)
			}
			delete(oracle, k)
			continue
		}
		if _, err := writer.Insert(record.Record{Key: k}); err != nil {
			t.Fatalf("client %d Insert(%v): %v", i%3, k, err)
		}
		oracle[k] = true
	}

	// Every client answers identically.
	for ci, ix := range clients {
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("client %d: %v", ci, err)
		}
		n, err := ix.Count()
		if err != nil || n != len(oracle) {
			t.Fatalf("client %d Count = %d, %v; want %d", ci, n, err, len(oracle))
		}
		for k := range oracle {
			if _, _, err := ix.Search(k); err != nil {
				t.Fatalf("client %d Search(%v): %v", ci, k, err)
			}
		}
	}

	// Split statistics are per client: the sum of splits across clients
	// equals the tree's growth, since every split happened through
	// exactly one of them.
	var totalSplits int64
	for _, ix := range clients {
		totalSplits += ix.Metrics().Splits
	}
	leaves, err := clients[0].Leaves()
	if err != nil {
		t.Fatal(err)
	}
	var totalMerges int64
	for _, ix := range clients {
		totalMerges += ix.Metrics().Merges
	}
	// leaves = 1 + splits - merges (each split adds one leaf, each merge
	// removes one).
	if int64(len(leaves)) != 1+totalSplits-totalMerges {
		t.Fatalf("leaves = %d, want 1 + %d splits - %d merges", len(leaves), totalSplits, totalMerges)
	}
}
