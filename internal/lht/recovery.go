package lht

// This file implements torn-mutation recovery: completing or rolling back
// splits and merges whose writer crashed mid-rewrite.
//
// Both structural mutations record a write-ahead intent (Bucket.Pending)
// in the surviving bucket before their first routed write and clear it
// with their last, so every intermediate state of a crashed mutation is
// detectable from a single fetch. The lookup path (Algorithm 2) and Scrub
// call repairTorn on any bucket fetched with an uncleared intent; repair
// is idempotent and deterministic, so any number of clients can race to
// repair the same tear and converge on the same tree — byte-identical to
// the one a never-crashed writer would have produced.

import (
	"context"
	"errors"
	"fmt"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/metrics"
	"lht/internal/record"
)

// splitHalves partitions the (possibly intent-marked) full leaf b at its
// interval median, exactly as Algorithm 1 does: the local half keeps the
// name f_n(lambda), the remote half is named lambda itself. The partition
// is a pure function of the bucket, which is what makes split recovery
// deterministic: re-deriving the halves from the marked bucket yields the
// same bytes the crashed writer was about to write.
func splitHalves(b *Bucket) (local, remote *Bucket) {
	lambda := b.Label
	iv := b.Interval()
	mid := iv.Lo + (iv.Hi-iv.Lo)/2
	var left, right []record.Record
	for _, r := range b.Records {
		if r.Key < mid {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	// Each child serves half the parent's interval, so it inherits half
	// the rate estimate — a pure function of the stored bucket, like the
	// record partition, so crash-repair replays reproduce it exactly.
	// Zero rate (load plane off) stays zero.
	local = &Bucket{Epoch: b.Epoch + 1, Rate: b.Rate / 2, RateAt: b.RateAt}
	remote = &Bucket{Epoch: b.Epoch + 1, Rate: b.Rate / 2, RateAt: b.RateAt}
	if lambda.LastBit() == 1 {
		// lambda = p011*: the remote leaf is lambda0 (named lambda), the
		// local leaf is lambda1 (named f_n(lambda)).
		remote.Label, remote.Records = lambda.Left(), left
		local.Label, local.Records = lambda.Right(), right
	} else {
		// lambda = p100* or #00*: the remote leaf is lambda1 (named
		// lambda), the local leaf is lambda0.
		remote.Label, remote.Records = lambda.Right(), right
		local.Label, local.Records = lambda.Left(), left
	}
	return local, remote
}

// completeSplit performs the routed steps of Algorithm 1 on the
// intent-marked bucket b stored under key: push the remote half to the
// peer responsible for lambda (one DHT-put, Theorem 2), then write the
// shrunk local half back in place, clearing the intent.
//
// With repair set, the call is finishing another writer's crashed split:
// the remote half may already exist (the crash happened after the put),
// possibly with newer writes absorbed since, so it is probed first and
// left untouched if present. The in-flight path skips the probe — the
// caller just fetched lambda as a leaf, so nothing can be stored under
// lambda's own key.
func (ix *Index) completeSplit(ctx context.Context, key string, b *Bucket, cost *Cost, repair bool) (local, remote *Bucket, err error) {
	lambda := b.Label
	local, remote = splitHalves(b)
	put := true
	if repair {
		cost.Steps++
		existing, err := ix.peekBucket(ctx, lambda.Key(), cost)
		switch {
		case err == nil:
			// The crashed writer's put landed (and the remote side may
			// have evolved since): keep what is stored.
			remote = existing
			put = false
		case !errors.Is(err, dht.ErrNotFound):
			return nil, nil, err
		}
	}
	if put {
		// Create-if-absent: racing repairers of the same tear derive the
		// same remote half, so the loser's conflict just means the push is
		// already done (and the stored copy may have evolved since — the
		// derived halves stay valid for the caller's case analysis, and
		// any mutation rebased on them is CAS-checked before it commits).
		cost.Lookups++
		cost.Steps++
		err := dht.DoCreateIf(ctx, ix.d, lambda.Key(), remote)
		if err != nil && !errors.Is(err, dht.ErrCASConflict) {
			return nil, nil, fmt.Errorf("lht: split put %s: %w", lambda, err)
		}
	}
	// Write the shrunk local half back in place (no lookup); this clears
	// the intent, committing the split. The write is guarded by the marked
	// bucket's epoch: a conflict (or a vanished key) means a racing
	// repairer already committed this very split — the halves are a pure
	// function of the marked bucket, so the committed state is ours.
	err = dht.DoWriteIf(ctx, ix.d, key, local, b.Epoch)
	if err != nil && !errors.Is(err, dht.ErrCASConflict) && !errors.Is(err, dht.ErrNotFound) {
		return nil, nil, fmt.Errorf("lht: split write %q: %w", key, err)
	}
	// This client just observed both children; lambda is now internal.
	ix.cacheDrop(lambda)
	ix.cacheNote(local.Label)
	ix.cacheNote(remote.Label)
	return local, remote, nil
}

// completeMerge resolves a torn merge: b is the merged bucket fetched
// under key with an uncleared PendingMerge intent. If the obsolete child
// named by the intent is unchanged since the merge began (same label and
// epoch), the merge rolls forward: remove the child, clear the intent.
// If the child has evolved — another client wrote to it after the crash,
// so its records are newer than the merged copy — the merge rolls back:
// the bucket under key shrinks to the surviving child and the evolved
// child is left untouched. Both outcomes restore a consistent tiling.
func (ix *Index) completeMerge(ctx context.Context, key string, b *Bucket, cost *Cost) (*Bucket, error) {
	rmKey := b.Pending.RemoveKey
	removed, ok := removedChildOf(b)
	if !ok {
		return nil, fmt.Errorf("%w: merge intent on %s names unrelated key %q", ErrCorrupt, b.Label, rmKey)
	}
	forward := false
	stale, err := ix.peekBucket(ctx, rmKey, cost)
	switch {
	case errors.Is(err, dht.ErrNotFound):
		// The crashed writer already removed the child: only the final
		// intent-clearing write was lost.
		forward = true
	case err != nil:
		return nil, err
	case stale.Label == removed && stale.Epoch == b.Pending.PeerEpoch:
		// The child looks exactly as the merge saw it: roll forward, but
		// only at that epoch — a concurrent writer slipping in between the
		// peek and the remove loses nothing, it just flips this repair to
		// a rollback.
		cost.Lookups++
		cost.Steps++
		rerr := dht.DoRemoveIf(ctx, ix.d, rmKey, b.Pending.PeerEpoch)
		switch {
		case rerr == nil:
			forward = true
		case !errors.Is(rerr, dht.ErrCASConflict):
			return nil, fmt.Errorf("lht: repair merge remove %q: %w", rmKey, rerr)
		}
	}
	if !forward {
		// The child changed since the crash: roll the merge back. The
		// surviving child (the one named f_n(parent)) keeps the records
		// of the merged copy that fall in its half; the evolved child
		// keeps its own.
		keeper := b.Label.Child(b.Label.LastBit())
		kiv := keyspace.IntervalOf(keeper)
		var recs []record.Record
		for _, r := range b.Records {
			if kiv.Contains(r.Key) {
				recs = append(recs, r)
			}
		}
		kb := &Bucket{Label: keeper, Records: recs, Epoch: b.Epoch + 1}
		werr := dht.DoWriteIf(ctx, ix.d, key, kb, b.Epoch)
		if errors.Is(werr, dht.ErrCASConflict) || errors.Is(werr, dht.ErrNotFound) {
			// A racing repairer (or writer) resolved the tear first; adopt
			// whatever is stored now.
			return ix.peekBucket(ctx, key, cost)
		}
		if werr != nil {
			return nil, fmt.Errorf("lht: rollback merge %q: %w", key, werr)
		}
		ix.cacheDrop(b.Label)
		ix.cacheNote(kb.Label)
		return kb, nil
	}
	cleared := b.Clone()
	cleared.Pending = Pending{}
	werr := dht.DoWriteIf(ctx, ix.d, key, cleared, b.Epoch)
	if errors.Is(werr, dht.ErrCASConflict) || errors.Is(werr, dht.ErrNotFound) {
		return ix.peekBucket(ctx, key, cost)
	}
	if werr != nil {
		return nil, fmt.Errorf("lht: repair merge clear %q: %w", key, werr)
	}
	ix.cacheDrop(removed)
	ix.cacheNote(cleared.Label)
	return cleared, nil
}

// removedChildOf identifies the child of the merged bucket's label that
// the recorded intent removes: the child named by the parent's own label
// (the other child inherits f_n(parent) and lives on in the merged slot).
func removedChildOf(b *Bucket) (removed bitlabel.Label, ok bool) {
	for _, c := range []bitlabel.Label{b.Label.Left(), b.Label.Right()} {
		if c.Name().Key() == b.Pending.RemoveKey {
			return c, true
		}
	}
	return bitlabel.Label{}, false
}

// repairTorn resolves the torn mutation recorded in b, which was fetched
// from under key. It returns the bucket now stored under key, charging
// the extra traffic to cost, the torn/repair counters, and maintenance
// lookups (repair is structure maintenance deferred past a crash).
func (ix *Index) repairTorn(ctx context.Context, key string, b *Bucket, cost *Cost) (*Bucket, error) {
	// Repair traffic is attributed to PhaseRepair regardless of which
	// operation tripped over the torn bucket — this is deferred
	// maintenance, not the operation's own cost class. Set here rather
	// than in completeSplit/completeMerge, which split() and merge()
	// also call under their own phases.
	ctx = metrics.WithPhase(ctx, metrics.PhaseRepair)
	before := cost.Lookups
	var out *Bucket
	var err error
	switch b.Pending.Kind {
	case PendingSplit:
		ix.c.AddTornSplits(1)
		if b.Label.Len() >= ix.cfg.Depth {
			// The split can never complete at the depth bound (a marker
			// left by a writer with a larger configured D, or a corrupt
			// one): roll it back to a plain oversized leaf. Guarded and
			// epoch-preserving: racing repairers write identical bytes,
			// and a conflict means someone else resolved it — adopt theirs.
			nb := b.Clone()
			nb.Pending = Pending{}
			werr := dht.DoWriteIf(ctx, ix.d, key, nb, b.Epoch)
			if errors.Is(werr, dht.ErrCASConflict) || errors.Is(werr, dht.ErrNotFound) {
				out, err = ix.peekBucket(ctx, key, cost)
				break
			}
			if werr != nil {
				return nil, fmt.Errorf("lht: rollback split %q: %w", key, werr)
			}
			out = nb
			break
		}
		out, _, err = ix.completeSplit(ctx, key, b, cost, true)
	case PendingMerge:
		ix.c.AddTornMerges(1)
		out, err = ix.completeMerge(ctx, key, b, cost)
	default:
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	ix.c.AddRepairs(1)
	ix.c.AddMaintLookups(int64(cost.Lookups - before))
	return out, nil
}

// peekBucket fetches and type-asserts a bucket, charging cost but —
// unlike getBucket — not teaching the leaf cache: recovery probes buckets
// it may be about to delete or supersede.
func (ix *Index) peekBucket(ctx context.Context, key string, cost *Cost) (*Bucket, error) {
	cost.Lookups++
	v, err := ix.d.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	b, ok := v.(*Bucket)
	if !ok {
		return nil, fmt.Errorf("%w: key %q holds %T, not a bucket", ErrCorrupt, key, v)
	}
	return b, nil
}
