package bench

import "testing"

// TestMembershipAblation runs A12 at reduced scale and pins the
// acceptance criteria: after a permanent node kill the self-healing arm
// answers 100% of queries AND restores full replica coverage within the
// bounded scrub rounds, while the static-view arm stays under-replicated
// forever; after an empty rejoin, hinted handoff plus re-replication
// refill the returned node. The serialized cost replay is eligible for
// the perf gate; the measured result is not.
func TestMembershipAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 4 real 4-node membership clusters")
	}
	if raceEnabled {
		t.Skip("wall-clock deadlines under the race detector's slowdown measure the CPU, not the plane")
	}
	o := Options{Theta: 16, Depth: 12, Trials: 1, Queries: 40, Seed: 1}
	lat, rt, err := RunMembershipAblation(o, 256)
	if err != nil {
		t.Fatal(err)
	}

	healQ := seriesByName(t, lat, "self-healing query success %")
	healW := seriesByName(t, lat, "self-healing outage write success %")
	healC := seriesByName(t, lat, "self-healing replica coverage %")
	statC := seriesByName(t, lat, "static view replica coverage %")
	statQ := seriesByName(t, lat, "static view query success %")
	for sc, name := range healScenarios {
		t.Logf("%s: success heal=%.1f%% static=%.1f%%, coverage heal=%.1f%% static=%.1f%%",
			name, healQ.Points[sc].Y, statQ.Points[sc].Y, healC.Points[sc].Y, statC.Points[sc].Y)
	}

	for sc := range healScenarios {
		// The headline claim: the self-healing arm loses nothing — every
		// outage write lands (hinted handoff), every post-recovery query
		// answers, and the replica count is fully restored.
		if y := healW.Points[sc].Y; y != 100 {
			t.Errorf("self-healing, scenario %d: outage write success %v%%, want 100%%", sc, y)
		}
		if y := healQ.Points[sc].Y; y != 100 {
			t.Errorf("self-healing, scenario %d: query success %v%%, want 100%%", sc, y)
		}
		if y := healC.Points[sc].Y; y != 100 {
			t.Errorf("self-healing, scenario %d: replica coverage %v%%, want 100%% within %d scrub rounds",
				sc, y, healMaxScrubRounds)
		}
		// The static arm never repairs: it must stay measurably
		// under-replicated (one further failure from data loss).
		if y := statC.Points[sc].Y; y >= 95 {
			t.Errorf("static view, scenario %d: replica coverage %v%%, expected degraded (< 95%%)", sc, y)
		}
	}

	// Gate eligibility: deterministic replay rows in, wall-clock rows out.
	if !gatedResult(rt) {
		t.Error("the round-trips replay must be eligible for the perf gate")
	}
	if gatedResult(lat) {
		t.Error("the timed membership result must not be eligible for the perf gate")
	}
	for _, s := range rt.Series {
		if len(s.Points) != len(healScenarios) {
			t.Fatalf("replay series %q has %d points, want %d", s.Name, len(s.Points), len(healScenarios))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("replay series %q: nonpositive round trips %v at x=%v", s.Name, p.Y, p.X)
			}
		}
	}
}

// TestMembershipCostReplayDeterministic pins A12b byte-for-byte: two
// runs with the same options must produce identical gated rows (the CI
// perf gate depends on it).
func TestMembershipCostReplayDeterministic(t *testing.T) {
	o := Options{Theta: 16, Depth: 12, Trials: 1, Queries: 30, Seed: 7}
	for _, cache := range []bool{false, true} {
		for sc := range healScenarios {
			a, err := healCostCell(o, 128, sc, cache)
			if err != nil {
				t.Fatal(err)
			}
			b, err := healCostCell(o, 128, sc, cache)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("scenario %d cache=%t: round trips differ across runs: %g vs %g", sc, cache, a, b)
			}
			if a <= 0 {
				t.Errorf("scenario %d cache=%t: nonpositive round trips %g", sc, cache, a)
			}
		}
	}
}
