package tcpnet

// Graceful degradation for the cluster client: per-node circuit breakers
// over the shared dht.Breaker state machine, a pluggable dialer (the
// injection point for the netchaos plane), redial backoff for both wire
// formats, and per-operation deadline budgets for replica failover.
//
// The health plane is opt-in (WithHealth): without it the client keeps
// its original contract — every operation attempts its node, transport
// faults are transient, and the policy layer above owns all pacing. With
// it, each node gets a breaker: a run of consecutive transport failures
// opens the node for a capped, jittered, exponentially growing cooldown
// during which every operation against it fails instantly with a typed
// *dht.UnavailableError (still transient, so retry loops keep working);
// the first operation after the cooldown is admitted as the half-open
// probe whose dial + handshake ping decides recovery. Replicated reads
// treat the fast-fail as an immediate failover signal — an open primary
// costs microseconds, not a timeout, before the read moves to the next
// holder.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"lht/internal/dht"
)

// ContextDialer is the pluggable transport factory: anything with
// net.Dialer's DialContext shape. The netchaos package's Chaos type
// implements it, which is how fault schedules are injected under a real
// client without touching the servers.
type ContextDialer interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
}

// dialWith dials through d, falling back to a plain net.Dialer. It
// rejects TCP self-connects: dialing a dead node whose port fell back
// into the ephemeral range can make the kernel pick that same port as
// the source, yielding a socket connected to itself — the handshake
// would then read back its own magic and hang instead of failing fast.
func dialWith(ctx context.Context, d ContextDialer, addr string) (net.Conn, error) {
	var conn net.Conn
	var err error
	if d != nil {
		conn, err = d.DialContext(ctx, "tcp", addr)
	} else {
		var nd net.Dialer
		conn, err = nd.DialContext(ctx, "tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	if la, ra := conn.LocalAddr(), conn.RemoteAddr(); la != nil && ra != nil && la.String() == ra.String() {
		_ = conn.Close()
		return nil, fmt.Errorf("tcpnet: dial %q: self-connect", addr)
	}
	return conn, nil
}

// Redial backoff bounds for connections without a breaker: the first
// failed dial backs subsequent attempts off for ~dialBackoffBase,
// doubling per consecutive failure up to dialBackoffMax, jittered over
// [d/2, d). With a breaker the breaker's own (longer, also jittered)
// open window is the shared cooldown instead.
const (
	dialBackoffBase = 5 * time.Millisecond
	dialBackoffMax  = 250 * time.Millisecond
)

// redialGate is the lazy-redial cooldown both wire formats consult
// before dialing: a dead node costs one dial per backoff window, not one
// per operation. All methods must be called under the owning
// connection's lock.
type redialGate struct {
	br      *dht.Breaker // shared per-node breaker; nil below the health plane
	fails   int          // consecutive dial/handshake failures
	next    time.Time    // earliest next dial attempt
	lastErr error
}

// check reports whether a dial may proceed now, returning the fast-fail
// error when the gate is closed.
func (g *redialGate) check(addr string) error {
	if g.br != nil {
		if _, backing := g.br.Backoff(); backing {
			return g.br.Unavailable(addr)
		}
		return nil
	}
	if g.fails > 0 && time.Now().Before(g.next) {
		return dht.MarkTransient(fmt.Errorf(
			"tcpnet: dial %q backing off after %d failures: %w", addr, g.fails, g.lastErr))
	}
	return nil
}

// failure records a failed dial or handshake and schedules the next
// attempt window.
func (g *redialGate) failure(err error) {
	g.fails++
	g.lastErr = err
	d := dialBackoffBase << (g.fails - 1)
	if g.fails > 16 || d > dialBackoffMax || d <= 0 {
		d = dialBackoffMax
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	g.next = time.Now().Add(d)
}

// success resets the gate after a healthy dial.
func (g *redialGate) success() {
	g.fails = 0
	g.lastErr = nil
}

// minTimeoutCharge is the least wall-clock an attempt must have consumed
// before its context.DeadlineExceeded counts against the node's breaker.
// A caller whose deadline was already (nearly) spent on entry times out
// in microseconds through no fault of the node, and a burst of such
// calls must not trip breakers on healthy peers.
const minTimeoutCharge = 5 * time.Millisecond

// opToken is what allow returns for an admitted operation: whether this
// operation holds the breaker's single half-open probe slot, and when it
// was admitted. record needs both to classify the outcome.
type opToken struct {
	probe bool
	start time.Time
}

// allow is the health gate every per-node operation passes: it admits
// without the health plane or through a closed breaker, and returns the
// typed fast-fail when the node's breaker is open. Allow itself claims
// the half-open probe slot, so the first operation after a cooldown IS
// the probe — the token records that so record can settle the slot.
func (n *clientNode) allow() (opToken, error) {
	if n.br == nil {
		return opToken{}, nil
	}
	ok, probe := n.br.AllowProbe()
	if !ok {
		n.counters.AddBreakerFastFails(1)
		return opToken{}, n.br.Unavailable(n.addr)
	}
	return opToken{probe: probe, start: time.Now()}, nil
}

// record feeds one finished operation's outcome to the node's breaker.
// The classification is deliberate:
//
//   - nil, ErrNotFound, CAS conflicts, and other server-level errors are
//     successes — the node answered;
//   - transport faults (dht.IsTransient) are failures;
//   - context.DeadlineExceeded is a failure only when the attempt ran
//     for at least minTimeoutCharge: a black-holed node never answers,
//     so the deadline expiring while waiting on it is the only signal it
//     gives — but a caller whose own deadline was already (nearly) spent
//     on entry says nothing about the node;
//   - context.Canceled is neutral — a hedge losing its race or a caller
//     walking away says nothing about the node;
//   - our own breaker fast-fails and client-closed are neutral: no
//     contact was made.
//
// A neutral outcome on the operation holding the half-open probe slot
// relinquishes it (Breaker.CancelProbe): the hedger cancels its losing
// arm, and if that arm was the probe, keeping the slot claimed would
// wedge the breaker half-open forever — no later operation could ever be
// admitted to close or re-open it.
func (n *clientNode) record(tok opToken, err error) {
	if n.br == nil {
		return
	}
	neutral := false
	switch {
	case err == nil:
		n.br.Success()
	case errors.Is(err, context.Canceled),
		errors.Is(err, errClientClosed),
		dht.IsUnavailable(err):
		neutral = true
	case errors.Is(err, context.DeadlineExceeded):
		if time.Since(tok.start) < minTimeoutCharge {
			neutral = true
		} else {
			n.br.Failure(err)
		}
	case dht.IsTransient(err):
		n.br.Failure(err)
	default:
		n.br.Success()
	}
	if neutral && tok.probe {
		n.br.CancelProbe()
	}
}

// Health reports the breaker state for one node address, or
// BreakerClosed when the health plane is off. Exposed for tests and
// operational introspection.
func (c *Client) Health(addr string) dht.BreakerState {
	for _, n := range c.ringNodes() {
		if n.addr == addr && n.br != nil {
			return n.br.State()
		}
	}
	return dht.BreakerClosed
}

// stepCtx splits the caller's remaining deadline budget evenly over the
// remaining failover steps: with 3 holders left and 300ms on the clock,
// the next attempt gets 100ms, so one black-holed holder can never eat
// the budget the caller meant for the whole read. Without a deadline
// (or on the final step) the context passes through untouched.
func stepCtx(ctx context.Context, stepsLeft int) (context.Context, context.CancelFunc) {
	if stepsLeft <= 1 {
		return ctx, func() {}
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, time.Now().Add(rem/time.Duration(stepsLeft)))
}

// verifyDegraded probes every node concurrently like DialContext's
// strict path, but instead of failing the construction on the first dead
// node it trips that node's breaker — the node starts open, fails fast,
// and is adopted by the first successful half-open probe after it comes
// back. Construction fails only if no node at all is reachable.
func (c *Client) verifyDegraded(ctx context.Context) error {
	var (
		mu   sync.Mutex
		up   int
		last error
		wg   sync.WaitGroup
	)
	for _, n := range c.ringNodes() {
		wg.Add(1)
		go func(n *clientNode) {
			defer wg.Done()
			err := c.verify(ctx, n)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				up++
				return
			}
			last = err
			n.br.Trip(err)
		}(n)
	}
	wg.Wait()
	if up == 0 {
		return fmt.Errorf("tcpnet: degraded start: no reachable nodes: %w", last)
	}
	return nil
}
