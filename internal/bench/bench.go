// Package bench is the experiment harness that regenerates every figure
// of the paper's evaluation (section 9). Each Run* function reproduces one
// figure as a Result: named series of (x, y) points, averaged over
// independently generated datasets exactly as the paper averages over 100
// datasets per point.
//
// The drivers run both LHT and the PHT baseline over instrumented
// single-process DHTs (the measurements are DHT-lookup and record counts,
// which footnote 5 of the paper notes are network-scale independent), so
// paper-scale runs (2^20 records) complete on one machine. cmd/lht-bench
// runs them at full scale; bench_test.go wires each one to a testing.B
// benchmark at reduced scale.
package bench

import (
	"fmt"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/metrics"
	"lht/internal/pht"
	"lht/internal/record"
)

// Options are the shared experiment parameters.
type Options struct {
	// Theta is theta_split (default 100, the paper's default).
	Theta int `json:"theta"`
	// Depth is D (default 20).
	Depth int `json:"depth"`
	// Trials is the number of independently generated datasets averaged
	// per data point (the paper uses 100; tests use fewer).
	Trials int `json:"trials"`
	// Queries is the number of queries per trial for query experiments
	// (the paper issues 1000 lookups per point).
	Queries int `json:"queries"`
	// Seed makes every run reproducible; trial t of any experiment uses
	// Seed+t.
	Seed int64 `json:"seed"`
	// Agg, when non-nil, aggregates the counters of every index any
	// experiment builds (cmd/lht-bench points it at the process counters
	// behind its /metrics endpoint and at the latency reporter). It is
	// runtime wiring, not a parameter, so it stays out of the report.
	Agg *metrics.Counters `json:"-"`
}

// WithDefaults fills unset fields with the paper's defaults (scaled-down
// trial counts; cmd/lht-bench raises them to paper scale).
func (o Options) WithDefaults() Options {
	if o.Theta == 0 {
		o.Theta = 100
	}
	if o.Depth == 0 {
		o.Depth = 20
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Queries == 0 {
		o.Queries = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one named curve of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Result is one reproduced figure.
type Result struct {
	Name   string   `json:"name"` // e.g. "Fig 6a"
	Title  string   `json:"title"`
	XLabel string   `json:"xlabel"`
	YLabel string   `json:"ylabel"`
	Series []Series `json:"series"`
}

// Sizes returns the power-of-two data sizes [2^lo, 2^hi].
func Sizes(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<uint(e))
	}
	return out
}

// newLHT builds a fresh LHT over an instrumented local DHT. The growth
// experiments insert only, as the paper's do, so merging is left disabled.
func (o Options) newLHT(theta, depth int) (*lht.Index, error) {
	return lht.New(dht.NewLocal(), lht.Config{SplitThreshold: theta, Depth: depth, Aggregate: o.Agg})
}

// newPHT builds the PHT counterpart with identical parameters.
func (o Options) newPHT(theta, depth int) (*pht.Index, error) {
	return pht.New(dht.NewLocal(), pht.Config{SplitThreshold: theta, Depth: depth, Aggregate: o.Agg})
}

// grow inserts recs one by one, invoking visit at every checkpoint size
// (checkpoints must be ascending; the largest must not exceed len(recs)).
func grow(recs []record.Record, checkpoints []int, insert func(record.Record) error, visit func(cp int)) error {
	next := 0
	for i, r := range recs {
		if err := insert(r); err != nil {
			return fmt.Errorf("bench: insert %d: %w", i, err)
		}
		for next < len(checkpoints) && i+1 == checkpoints[next] {
			visit(checkpoints[next])
			next++
		}
	}
	return nil
}

// meanSeries averages per-trial Y values: ys[trial][point].
func meanSeries(name string, xs []float64, ys [][]float64) Series {
	pts := make([]Point, len(xs))
	for p := range xs {
		var sum float64
		for t := range ys {
			sum += ys[t][p]
		}
		pts[p] = Point{X: xs[p], Y: sum / float64(len(ys))}
	}
	return Series{Name: name, Points: pts}
}

func float64s(sizes []int) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = float64(s)
	}
	return out
}
