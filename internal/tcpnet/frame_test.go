package tcpnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"lht/internal/dht"
)

// buildFrame assembles a raw frame for tests: header + payload, with the
// length stamped.
func buildFrame(id uint64, op dht.OpKind, payload []byte) []byte {
	b := make([]byte, frameHeaderLen+4, frameHeaderLen+4+len(payload))
	binary.BigEndian.PutUint32(b[0:4], uint32(frameHeaderLen+len(payload)))
	binary.BigEndian.PutUint64(b[4:12], id)
	b[12] = byte(op)
	return append(b, payload...)
}

func TestReadFrameBody(t *testing.T) {
	payload := []byte("hello")
	raw := buildFrame(7, dht.OpGet, payload)
	body, err := readFrameBody(bufio.NewReader(bytes.NewReader(raw)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(body[:8]); got != 7 {
		t.Fatalf("id = %d", got)
	}
	if dht.OpKind(body[8]) != dht.OpGet {
		t.Fatalf("op = %d", body[8])
	}
	if !bytes.Equal(body[frameHeaderLen:], payload) {
		t.Fatalf("payload = %q", body[frameHeaderLen:])
	}

	// A buffer is reused when big enough, grown when not.
	buf := make([]byte, 0, 256)
	body, err = readFrameBody(bufio.NewReader(bytes.NewReader(raw)), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &body[0] != &buf[:1][0] {
		t.Error("readFrameBody did not reuse the caller's buffer")
	}
}

func TestReadFrameBodyMalformed(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"short header", []byte{0, 0, 1}, io.ErrUnexpectedEOF},
		{"length below header", []byte{0, 0, 0, 8}, errFrameTooSmall},
		{"zero length", []byte{0, 0, 0, 0}, errFrameTooSmall},
		{"oversized length", []byte{0xff, 0xff, 0xff, 0xff}, errFrameTooLarge},
		{"truncated body", append([]byte{0, 0, 0, 20}, make([]byte, 10)...), io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readFrameBody(bufio.NewReader(bytes.NewReader(tc.raw)), nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestCursorTruncation(t *testing.T) {
	c := cursor{b: []byte{}}
	if _, err := c.u8(); !errors.Is(err, errTruncated) {
		t.Error("u8 on empty should fail")
	}
	if _, err := c.uvarint(); !errors.Is(err, errTruncated) {
		t.Error("uvarint on empty should fail")
	}
	// A length prefix pointing past the end must not read out of bounds.
	c = cursor{b: []byte{200, 1, 'x'}} // claims 200 bytes, has 1
	if _, err := c.lenBytes(); !errors.Is(err, errTruncated) {
		t.Error("lenBytes past end should fail")
	}
	// A batch count exceeding the remaining bytes is rejected outright.
	c = cursor{b: binary.AppendUvarint(nil, 1<<40)}
	if _, err := c.count(); err == nil {
		t.Error("absurd count should fail")
	}
}

func TestTaggedValueRoundTrip(t *testing.T) {
	// Raw []byte: zero serialization, copied out of the frame.
	src := []byte("raw-value")
	b, err := appendValue(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != tagRaw {
		t.Fatalf("tag = %d", b[0])
	}
	v, err := decodeTaggedValue(b)
	if err != nil {
		t.Fatal(err)
	}
	got := v.([]byte)
	if !bytes.Equal(got, src) {
		t.Fatalf("value = %q", got)
	}
	src[0] = 'X' // the decoded value must not alias the frame
	if got[0] == 'X' {
		t.Error("decoded value aliases the input buffer")
	}

	// Arbitrary type: gob, byte-identical to the legacy encoding.
	b, err = appendValue(nil, &payload{N: 9, S: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != tagGob {
		t.Fatalf("tag = %d", b[0])
	}
	legacy, err := encodeValue(&payload{N: 9, S: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b[1:], legacy) {
		t.Error("tagGob bytes differ from the legacy gob encoding")
	}
	v, err = decodeTaggedValue(b)
	if err != nil {
		t.Fatal(err)
	}
	if p := v.(*payload); p.N != 9 || p.S != "s" {
		t.Fatalf("value = %+v", p)
	}

	// Garbage tags error.
	if _, err := decodeTaggedValue(nil); err == nil {
		t.Error("empty tagged value should fail")
	}
	if _, err := decodeTaggedValue([]byte{99, 1, 2}); err == nil {
		t.Error("unknown tag should fail")
	}
}

// TestServerSurvivesMalformedPeer throws garbage at a live server: bad
// magic, garbage op bytes, truncated payloads, oversized length fields.
// The server must never panic, must answer in-frame errors for in-frame
// garbage, and must keep serving well-formed clients throughout.
func TestServerSurvivesMalformedPeer(t *testing.T) {
	addrs := startServers(t, 1)
	c, err := DialContext(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ctx := context.Background()
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	send := func(raw []byte) {
		conn, err := net.Dial("tcp", addrs[0])
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
		_, _ = conn.Write(raw)
		// Half-close so the server sees EOF after our bytes, then drain
		// whatever it answered.
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		_, _ = io.Copy(io.Discard, conn)
	}

	send([]byte("GARB"))                                                                                // bad magic: not a frame, not valid gob
	send([]byte(wireMagic))                                                                             // magic then silence
	send(append([]byte(wireMagic), 0xff, 0xff, 0xff, 0xff))                                             // oversized length
	send(append([]byte(wireMagic), 0, 0, 0, 2, 1, 2))                                                   // length below header
	send(append([]byte(wireMagic), buildFrame(1, 99, nil)...))                                          // unknown op
	send(append([]byte(wireMagic), buildFrame(1, dht.OpGet, []byte{200})...))                           // truncated key
	send(append([]byte(wireMagic), buildFrame(1, dht.OpGetBatch, binary.AppendUvarint(nil, 1<<50))...)) // absurd count

	// In-frame garbage answers statusErr without dropping the connection.
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	msg := append([]byte(wireMagic), buildFrame(5, dht.OpGet, []byte{200})...) // truncated key
	msg = append(msg, buildFrame(6, dht.OpPing, nil)...)                       // then a valid ping
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	body, err := readFrameBody(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id := binary.BigEndian.Uint64(body[:8]); id != 5 {
		t.Fatalf("first response id = %d", id)
	}
	if body[frameHeaderLen] != statusErr {
		t.Fatalf("garbage payload answered status %d, want statusErr", body[frameHeaderLen])
	}
	if msg := string(body[frameHeaderLen+1:]); !strings.Contains(msg, "malformed") {
		t.Fatalf("error message = %q", msg)
	}
	body, err = readFrameBody(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id := binary.BigEndian.Uint64(body[:8]); id != 6 {
		t.Fatalf("second response id = %d", id)
	}
	if body[frameHeaderLen] != statusOK {
		t.Fatalf("ping after garbage answered status %d", body[frameHeaderLen])
	}

	// The healthy client still works.
	v, err := c.Get(ctx, "k")
	if err != nil || !bytes.Equal(v.([]byte), []byte("v")) {
		t.Fatalf("Get after garbage peers = %v, %v", v, err)
	}
}

// TestClientSurvivesMalformedServer points a client at a server that
// accepts the handshake, then answers garbage. The client must error —
// transient, so the retry plane can act — and never panic.
func TestClientSurvivesMalformedServer(t *testing.T) {
	pingOK := func(id uint64) []byte {
		return buildFrame(id, dht.OpPing, []byte{statusOK})
	}
	cases := []struct {
		name  string
		reply func(reqID uint64) []byte
	}{
		{"oversized length", func(id uint64) []byte { return []byte{0xff, 0xff, 0xff, 0xff} }},
		{"length below header", func(id uint64) []byte { return []byte{0, 0, 0, 3, 1, 2, 3} }},
		{"empty status", func(id uint64) []byte { return buildFrame(id, dht.OpGet, nil) }},
		{"truncated stream", func(id uint64) []byte { return []byte{0, 0, 0, 20, 0} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			go func() {
				for {
					conn, err := ln.Accept()
					if err != nil {
						return
					}
					go func(conn net.Conn) {
						defer conn.Close()
						br := bufio.NewReader(conn)
						if _, err := br.Discard(len(wireMagic)); err != nil {
							return
						}
						// Answer the handshake ping honestly...
						body, err := readFrameBody(br, nil)
						if err != nil {
							return
						}
						if _, err := conn.Write(pingOK(binary.BigEndian.Uint64(body[:8]))); err != nil {
							return
						}
						// ...then answer the first real request with garbage.
						body, err = readFrameBody(br, nil)
						if err != nil {
							return
						}
						_, _ = conn.Write(tc.reply(binary.BigEndian.Uint64(body[:8])))
					}(conn)
				}
			}()

			c, err := DialContext(context.Background(), []string{ln.Addr().String()})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_, err = c.Get(ctx, "k")
			if err == nil {
				t.Fatal("Get against a garbage-speaking server succeeded")
			}
			if errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("client hung on garbage instead of failing: %v", err)
			}
			if errors.Is(err, dht.ErrNotFound) {
				t.Fatalf("garbage mislabelled as a missing key: %v", err)
			}
		})
	}
}
