// Package stats provides the small statistics helpers the experiment
// harness uses to average results over repeated trials, as the paper does
// over its 100 datasets per point.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy; 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// MinMax returns the extremes of xs; zeros for an empty slice.
func MinMax(xs []float64) (minVal, maxVal float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	minVal, maxVal = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minVal {
			minVal = x
		}
		if x > maxVal {
			maxVal = x
		}
	}
	return minVal, maxVal
}
