package sfc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCurveValidates(t *testing.T) {
	for _, bits := range []int{0, -1, MaxBits + 1} {
		if _, err := NewCurve(bits); !errors.Is(err, ErrBits) {
			t.Errorf("NewCurve(%d) = %v", bits, err)
		}
	}
	c, err := NewCurve(16)
	if err != nil || c.Bits() != 16 {
		t.Fatalf("NewCurve(16) = %v, %v", c, err)
	}
	if c.CellWidth() != 1.0/65536 {
		t.Errorf("CellWidth = %v", c.CellWidth())
	}
}

func TestEncodeDomain(t *testing.T) {
	c, _ := NewCurve(8)
	for _, p := range [][2]float64{{-0.1, 0.5}, {0.5, 1.0}, {1.0, 0.5}} {
		if _, err := c.Encode(p[0], p[1]); !errors.Is(err, ErrDomain) {
			t.Errorf("Encode(%v) = %v", p, err)
		}
	}
}

func TestEncodeKnownValues(t *testing.T) {
	c, _ := NewCurve(1)
	// One bit per dimension: quadrants map to z = 0, 1/4, 2/4, 3/4 in
	// (x,y) order (0,0), (0,1), (1,0), (1,1).
	cases := []struct {
		x, y float64
		want float64
	}{
		{0.1, 0.1, 0}, {0.1, 0.6, 0.25}, {0.6, 0.1, 0.5}, {0.6, 0.6, 0.75},
	}
	for _, tc := range cases {
		got, err := c.Encode(tc.x, tc.y)
		if err != nil || got != tc.want {
			t.Errorf("Encode(%v, %v) = %v, %v; want %v", tc.x, tc.y, got, err, tc.want)
		}
	}
}

// Property: Decode(Encode(p)) is p's cell corner, and re-encoding the
// corner gives the same key (quantization is idempotent).
func TestQuickRoundTrip(t *testing.T) {
	c, _ := NewCurve(12)
	rng := rand.New(rand.NewSource(1))
	prop := func() bool {
		x, y := rng.Float64(), rng.Float64()
		key, err := c.Encode(x, y)
		if err != nil || key < 0 || key >= 1 {
			return false
		}
		qx, qy := c.Decode(key)
		if !(qx <= x && x < qx+c.CellWidth() && qy <= y && y < qy+c.CellWidth()) {
			return false
		}
		key2, err := c.Encode(qx, qy)
		return err == nil && key2 == key
	}
	cfg := &quick.Config{MaxCount: 5000}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Z-order preserves quadrant locality - points in the same cell
// share a key, points in different cells differ.
func TestCellIdentity(t *testing.T) {
	c, _ := NewCurve(4)
	k1, _ := c.Encode(0.51, 0.26)
	k2, _ := c.Encode(0.53, 0.28) // same 1/16 cell
	if k1 != k2 {
		t.Errorf("same-cell points got keys %v, %v", k1, k2)
	}
	k3, _ := c.Encode(0.51, 0.33) // neighboring cell
	if k1 == k3 {
		t.Error("different cells share a key")
	}
}

func TestCoverRectValidates(t *testing.T) {
	c, _ := NewCurve(8)
	bad := []Rect{
		{X0: 0.5, X1: 0.5, Y0: 0, Y1: 1},
		{X0: 0.6, X1: 0.5, Y0: 0, Y1: 1},
		{X0: -0.1, X1: 0.5, Y0: 0, Y1: 1},
		{X0: 0, X1: 1.1, Y0: 0, Y1: 1},
	}
	for _, r := range bad {
		if _, err := c.CoverRect(r, 16); !errors.Is(err, ErrRect) {
			t.Errorf("CoverRect(%+v) = %v", r, err)
		}
	}
}

// TestCoverRectExactness: for every grid point, membership in the
// rectangle implies its key is covered by some span (no false negatives),
// and span membership plus the Contains post-filter equals rectangle
// membership exactly.
func TestCoverRectExactness(t *testing.T) {
	c, _ := NewCurve(5) // 32x32 grid: exhaustive check is cheap
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		x0, x1 := rng.Float64(), rng.Float64()
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		y0, y1 := rng.Float64(), rng.Float64()
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		if x1-x0 < 0.05 || y1-y0 < 0.05 {
			continue
		}
		r := Rect{X0: x0, X1: x1, Y0: y0, Y1: y1}
		for _, budget := range []int{4, 16, 1000} {
			spans, err := c.CoverRect(r, budget)
			if err != nil {
				t.Fatal(err)
			}
			if len(spans) == 0 {
				t.Fatalf("no spans for %+v", r)
			}
			inSpans := func(k float64) bool {
				for _, s := range spans {
					if k >= s.Lo && k < s.Hi {
						return true
					}
				}
				return false
			}
			n := 32
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					x := (float64(i) + 0.5) / float64(n)
					y := (float64(j) + 0.5) / float64(n)
					k, err := c.Encode(x, y)
					if err != nil {
						t.Fatal(err)
					}
					inRect := r.Contains(x, y)
					covered := inSpans(k)
					// No false negatives: every in-rectangle point's key
					// is covered. (Spans over-approximate; applications
					// post-filter on the exact coordinates they stored,
					// so false positives are fine.)
					if inRect && !covered {
						t.Fatalf("budget %d: point (%v,%v) in rect but key %v uncovered", budget, x, y, k)
					}
				}
			}
		}
	}
}

// TestCoverRectBudget: small budgets produce few spans; large budgets
// refine toward the exact cell decomposition.
func TestCoverRectBudget(t *testing.T) {
	c, _ := NewCurve(10)
	r := Rect{X0: 0.1, X1: 0.62, Y0: 0.33, Y1: 0.7}
	small, err := c.CoverRect(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := c.CoverRect(r, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) > 8 {
		t.Errorf("budget 4 produced %d spans", len(small))
	}
	var smallArea, bigArea float64
	for _, s := range small {
		smallArea += s.Hi - s.Lo
	}
	for _, s := range big {
		bigArea += s.Hi - s.Lo
	}
	want := (r.X1 - r.X0) * (r.Y1 - r.Y0)
	if bigArea >= smallArea {
		t.Errorf("refinement did not shrink coverage: %v >= %v", bigArea, smallArea)
	}
	if bigArea < want {
		t.Errorf("coverage %v below true area %v", bigArea, want)
	}
	if bigArea > want*1.3 {
		t.Errorf("coverage %v too loose for true area %v", bigArea, want)
	}
}

func TestMergeSpans(t *testing.T) {
	got := mergeSpans([]Span{{0.5, 0.75}, {0, 0.25}, {0.25, 0.5}, {0.9, 1}})
	want := []Span{{0, 0.75}, {0.9, 1}}
	if len(got) != len(want) {
		t.Fatalf("mergeSpans = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeSpans = %v, want %v", got, want)
		}
	}
	if out := mergeSpans(nil); len(out) != 0 {
		t.Error("mergeSpans(nil) should be empty")
	}
}
