package lht

import (
	"context"
	"errors"
	"fmt"

	"lht/internal/bitlabel"
	"lht/internal/dht"
	"lht/internal/metrics"
	"lht/internal/record"
)

// Min answers a min query (Theorem 3): the leaf holding the smallest data
// key is the leftmost leaf #00*, which the naming function binds to the
// virtual root "#", so a single DHT-lookup reaches it.
//
// If deletions have left boundary leaves empty, Min walks inward through
// the local tree's branch nodes (one extra lookup per empty leaf) until it
// finds a record; ErrEmpty is returned when the whole index is empty.
func (ix *Index) Min() (record.Record, Cost, error) {
	return ix.MinContext(context.Background())
}

// MinContext is Min with a caller-supplied context.
func (ix *Index) MinContext(ctx context.Context) (rec record.Record, cost Cost, err error) {
	ctx, done := ix.beginOp(ctx, metrics.OpMin)
	defer func() { done(err) }()
	return ix.extreme(ctx, sweepRight)
}

// Max answers a max query (Theorem 3): the rightmost leaf #01* is bound to
// "#0", one DHT-lookup away. On a single-leaf tree the key "#0" does not
// exist and the leaf is under "#" instead.
func (ix *Index) Max() (record.Record, Cost, error) {
	return ix.MaxContext(context.Background())
}

// MaxContext is Max with a caller-supplied context.
func (ix *Index) MaxContext(ctx context.Context) (rec record.Record, cost Cost, err error) {
	ctx, done := ix.beginOp(ctx, metrics.OpMax)
	defer func() { done(err) }()
	return ix.extreme(ctx, sweepLeft)
}

// extreme finds the extreme non-empty leaf: dir == sweepRight walks
// rightward from the leftmost leaf (min query), sweepLeft leftward from
// the rightmost (max query).
func (ix *Index) extreme(ctx context.Context, dir sweepDir) (record.Record, Cost, error) {
	// The boundary-leaf fetch and the inward walk are both probe traffic.
	ctx = metrics.WithPhase(ctx, metrics.PhaseProbe)
	var cost Cost
	key := bitlabel.Root.Key() // min: leftmost leaf is named "#"
	if dir == sweepLeft {
		key = bitlabel.TreeRoot.Key() // max: rightmost leaf is named "#0"
	}
	b, err := ix.getBucket(ctx, key, &cost)
	if dir == sweepLeft && errors.Is(err, dht.ErrNotFound) {
		// Single-leaf tree: "#0" is both leftmost and rightmost and lives
		// under "#".
		b, err = ix.getBucket(ctx, bitlabel.Root.Key(), &cost)
	}
	if err != nil {
		cost.Steps = cost.Lookups
		return record.Record{}, cost, fmt.Errorf("lht: extreme leaf: %w", err)
	}

	for {
		if len(b.Records) > 0 {
			cost.Steps = cost.Lookups
			return pickExtreme(b.Records, dir), cost, nil
		}
		// Empty boundary leaf: move to the adjacent branch and enter it
		// through its near-end boundary leaf (same pattern as sweep).
		var (
			beta bitlabel.Label
			ok   bool
		)
		if dir == sweepRight {
			beta, ok = b.Label.RightNeighbor()
		} else {
			beta, ok = b.Label.LeftNeighbor()
		}
		if !ok {
			cost.Steps = cost.Lookups
			return record.Record{}, cost, ErrEmpty
		}
		nb, err := ix.getBucket(ctx, beta.Key(), &cost)
		if errors.Is(err, dht.ErrNotFound) {
			nb, err = ix.getBucket(ctx, beta.Name().Key(), &cost)
		}
		if err != nil {
			cost.Steps = cost.Lookups
			return record.Record{}, cost, fmt.Errorf("lht: extreme walk %s: %w", beta, err)
		}
		b = nb
	}
}

func pickExtreme(rs []record.Record, dir sweepDir) record.Record {
	best := rs[0]
	for _, r := range rs[1:] {
		if (dir == sweepRight && r.Key < best.Key) || (dir == sweepLeft && r.Key > best.Key) {
			best = r
		}
	}
	return best
}
