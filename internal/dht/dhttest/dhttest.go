// Package dhttest provides a conformance battery for dht.DHT
// implementations: every substrate in the repository (the local map, the
// Chord ring, the Kademlia network, the TCP cluster client, and any
// future one) must pass the same behavioural contract the index layers
// rely on. Substrate test files call Run with a factory.
package dhttest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"lht/internal/dht"
)

// Options tunes the battery for substrate-specific constraints.
type Options struct {
	// ValueFactory produces storable values; substrates that serialize
	// need registered concrete types. Defaults to plain byte slices.
	ValueFactory func(i int) dht.Value
	// ValueEqual compares a stored value with the factory's i-th value.
	ValueEqual func(v dht.Value, i int) bool
	// Keys is the number of keys bulk tests use (default 200).
	Keys int
	// Concurrent disables the concurrency test when false-unsafe
	// substrates are wrapped for single-threaded use. Defaults to true.
	SkipConcurrency bool
}

func (o Options) withDefaults() Options {
	if o.ValueFactory == nil {
		o.ValueFactory = func(i int) dht.Value { return []byte{byte(i), byte(i >> 8)} }
	}
	if o.ValueEqual == nil {
		o.ValueEqual = func(v dht.Value, i int) bool {
			b, ok := v.([]byte)
			return ok && len(b) == 2 && b[0] == byte(i) && b[1] == byte(i>>8)
		}
	}
	if o.Keys == 0 {
		o.Keys = 200
	}
	return o
}

// Run drives the full conformance battery against fresh substrates from
// the factory.
func Run(t *testing.T, factory func(t *testing.T) dht.DHT, opts Options) {
	t.Helper()
	o := opts.withDefaults()
	ctx := context.Background()

	t.Run("GetMissing", func(t *testing.T) {
		d := factory(t)
		if _, err := d.Get(ctx, "absent"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
		}
	})

	t.Run("PutGetReplace", func(t *testing.T) {
		d := factory(t)
		if err := d.Put(ctx, "k", o.ValueFactory(1)); err != nil {
			t.Fatal(err)
		}
		v, err := d.Get(ctx, "k")
		if err != nil || !o.ValueEqual(v, 1) {
			t.Fatalf("Get = %v, %v", v, err)
		}
		if err := d.Put(ctx, "k", o.ValueFactory(2)); err != nil {
			t.Fatal(err)
		}
		if v, _ := d.Get(ctx, "k"); !o.ValueEqual(v, 2) {
			t.Fatal("Put must replace")
		}
	})

	t.Run("TakeSemantics", func(t *testing.T) {
		d := factory(t)
		if _, err := d.Take(ctx, "k"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("Take(absent) = %v", err)
		}
		if err := d.Put(ctx, "k", o.ValueFactory(3)); err != nil {
			t.Fatal(err)
		}
		v, err := d.Take(ctx, "k")
		if err != nil || !o.ValueEqual(v, 3) {
			t.Fatalf("Take = %v, %v", v, err)
		}
		if _, err := d.Get(ctx, "k"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatal("Take must remove the key")
		}
	})

	t.Run("RemoveIdempotent", func(t *testing.T) {
		d := factory(t)
		if err := d.Put(ctx, "k", o.ValueFactory(4)); err != nil {
			t.Fatal(err)
		}
		if err := d.Remove(ctx, "k"); err != nil {
			t.Fatal(err)
		}
		if err := d.Remove(ctx, "k"); err != nil {
			t.Fatalf("Remove(absent) = %v, must not error", err)
		}
		if _, err := d.Get(ctx, "k"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatal("Remove must delete")
		}
	})

	t.Run("WriteSemantics", func(t *testing.T) {
		d := factory(t)
		if err := d.Write(ctx, "k", o.ValueFactory(5)); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("Write(absent) = %v, want ErrNotFound", err)
		}
		if err := d.Put(ctx, "k", o.ValueFactory(5)); err != nil {
			t.Fatal(err)
		}
		if err := d.Write(ctx, "k", o.ValueFactory(6)); err != nil {
			t.Fatal(err)
		}
		if v, _ := d.Get(ctx, "k"); !o.ValueEqual(v, 6) {
			t.Fatal("Write must update")
		}
	})

	t.Run("ManyKeys", func(t *testing.T) {
		d := factory(t)
		for i := 0; i < o.Keys; i++ {
			if err := d.Put(ctx, fmt.Sprintf("key-%d", i), o.ValueFactory(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < o.Keys; i++ {
			v, err := d.Get(ctx, fmt.Sprintf("key-%d", i))
			if err != nil || !o.ValueEqual(v, i) {
				t.Fatalf("Get(key-%d) = %v, %v", i, v, err)
			}
		}
		// Delete the even keys, the odd ones must survive.
		for i := 0; i < o.Keys; i += 2 {
			if err := d.Remove(ctx, fmt.Sprintf("key-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < o.Keys; i++ {
			_, err := d.Get(ctx, fmt.Sprintf("key-%d", i))
			if i%2 == 0 && !errors.Is(err, dht.ErrNotFound) {
				t.Fatalf("key-%d should be gone, got %v", i, err)
			}
			if i%2 == 1 && err != nil {
				t.Fatalf("key-%d should survive, got %v", i, err)
			}
		}
	})

	t.Run("LabelShapedKeys", func(t *testing.T) {
		// The index layers use '#'-prefixed bit-string keys; make sure
		// nothing in the substrate chokes on them or conflates them.
		d := factory(t)
		keys := []string{"#", "#0", "#00", "#01", "#0110", "#01100000000000000000"}
		for i, k := range keys {
			if err := d.Put(ctx, k, o.ValueFactory(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i, k := range keys {
			v, err := d.Get(ctx, k)
			if err != nil || !o.ValueEqual(v, i) {
				t.Fatalf("Get(%q) = %v, %v", k, v, err)
			}
		}
	})

	t.Run("ContextCanceled", func(t *testing.T) {
		// Every substrate must refuse routed work on an already-cancelled
		// context, without disturbing stored state.
		d := factory(t)
		if err := d.Put(ctx, "k", o.ValueFactory(7)); err != nil {
			t.Fatal(err)
		}
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := d.Get(cctx, "k"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Get(cancelled) = %v, want context.Canceled", err)
		}
		if err := d.Put(cctx, "k2", o.ValueFactory(8)); !errors.Is(err, context.Canceled) {
			t.Fatalf("Put(cancelled) = %v, want context.Canceled", err)
		}
		if _, err := d.Take(cctx, "k"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Take(cancelled) = %v, want context.Canceled", err)
		}
		if err := d.Remove(cctx, "k"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Remove(cancelled) = %v, want context.Canceled", err)
		}
		if err := d.Write(cctx, "k", o.ValueFactory(9)); !errors.Is(err, context.Canceled) {
			t.Fatalf("Write(cancelled) = %v, want context.Canceled", err)
		}
		// Cancellation must be classified as permanent, not transient.
		if _, err := d.Get(cctx, "k"); dht.IsTransient(err) {
			t.Fatalf("cancellation classified transient: %v", err)
		}
		// The stored value must have survived all the refused operations.
		if v, err := d.Get(ctx, "k"); err != nil || !o.ValueEqual(v, 7) {
			t.Fatalf("Get after cancelled ops = %v, %v", v, err)
		}
	})

	if !o.SkipConcurrency {
		t.Run("ConcurrentMixedOps", func(t *testing.T) {
			d := factory(t)
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						key := fmt.Sprintf("c-%d-%d", g, i)
						if err := d.Put(ctx, key, o.ValueFactory(i)); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						if v, err := d.Get(ctx, key); err != nil || !o.ValueEqual(v, i) {
							t.Errorf("Get(%s) = %v, %v", key, v, err)
							return
						}
						if i%3 == 0 {
							if err := d.Remove(ctx, key); err != nil {
								t.Errorf("Remove: %v", err)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
