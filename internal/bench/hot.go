package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lht/internal/dht"
	"lht/internal/lht"
	"lht/internal/record"
	"lht/internal/tcpnet"
	"lht/internal/workload"
)

// Skew exponents of the hot-leaf ablation: uniform arrivals (the control
// arm), the mildest Zipf law math/rand's sampler admits, and the heavy
// skew where one key draws more than a third of all traffic.
var hotSkews = []float64{0, 1.01, 1.5}

const (
	// hotWorkers concurrent clients share one index handle — coalescing
	// is per-handle, and a real hot leaf is hot because many callers
	// converge on it at once.
	hotWorkers = 64
	// hotUpdatePct of the measured ops are in-place updates of existing
	// keys: they exercise the replicated CAS path and, because the rate
	// estimator bumps on the commit path, they are what can trip a hot
	// split during the run. Kept low so the tail measures read queueing
	// (what the plane addresses) rather than single-key CAS contention
	// (which no read plane can fix).
	hotUpdatePct = 2
	// hotSplitRate is the plane-on arm's split trigger in touches/sec;
	// low enough that a heavily skewed run can reach it, high enough
	// that uniform arrivals never do.
	hotSplitRate = 16
)

// RunHotAblation is ablation A10: the hot-leaf load-balancing plane
// under Zipfian skew, end to end over real sockets. hotWorkers
// concurrent clients drive a query/update mix whose arrival process is
// Zipf(s) over the record keys; because the framed wire answers one
// connection's requests in arrival order, the hot leaf's node is a
// genuine FIFO queue and the tail latency measures real queueing, not a
// model. The plane-on arm enables every load mechanism this ablation
// studies — rate-triggered splitting (Config.HotSplitRate), read
// coalescing (Config.CoalesceGets) and replica read spreading
// (tcpnet.WithReplicas) — and the plane-off arm none, on otherwise
// identical clusters.
//
// Two results: the timed p50/p99 per op class (latency, machine-speed
// dependent, not gated), and the deterministic round-trip cost of the
// identical plane-off workload replayed serially over the instrumented
// local substrate — the CI perf gate diffs that row, which pins the
// plane-off lookup path to its PR-era cost model under every skew.
func RunHotAblation(o Options, size int) (Result, Result, error) {
	o = o.WithDefaults()
	lat := Result{
		Name: "A10",
		Title: fmt.Sprintf("Hot-leaf load plane under Zipfian skew (%d records, %d clients, %d%% updates)",
			size, hotWorkers, hotUpdatePct),
		XLabel: "zipf exponent s",
		YLabel: "latency microseconds (p50/p99)",
	}
	rt := Result{
		Name:   "A10b",
		Title:  fmt.Sprintf("Skewed lookup cost, plane off (%d records + %d queries, serialized)", size, o.Queries),
		XLabel: "zipf exponent s",
		YLabel: "round trips",
	}

	arms := []struct {
		name  string
		plane bool
	}{
		{"plane off", false},
		{"plane on", true},
	}
	for _, arm := range arms {
		var qp50, qp99, up50, up99 []float64
		for _, s := range hotSkews {
			cell, err := measureHotCell(o, size, s, arm.plane)
			if err != nil {
				return lat, rt, fmt.Errorf("bench: hot ablation %s s=%v: %w", arm.name, s, err)
			}
			qp50 = append(qp50, cell.qp50)
			qp99 = append(qp99, cell.qp99)
			up50 = append(up50, cell.up50)
			up99 = append(up99, cell.up99)
		}
		lat.Series = append(lat.Series,
			meanSeries(arm.name+" query p50", hotSkews, [][]float64{qp50}),
			meanSeries(arm.name+" query p99", hotSkews, [][]float64{qp99}),
			meanSeries(arm.name+" update p50", hotSkews, [][]float64{up50}),
			meanSeries(arm.name+" update p99", hotSkews, [][]float64{up99}))
	}

	// The gated rows: plane off, serialized, over the instrumented local
	// map, cache off and on. Round trips here are a pure function of
	// (seed, theta, depth, size, queries, skew) — any drift means the
	// plane leaked into the default lookup path.
	for _, cache := range []bool{false, true} {
		var rts []float64
		for _, s := range hotSkews {
			n, err := hotCostCell(o, size, s, cache)
			if err != nil {
				return lat, rt, fmt.Errorf("bench: hot cost cell s=%v cache=%t: %w", s, cache, err)
			}
			rts = append(rts, n)
		}
		name := "cache off"
		if cache {
			name = "cache on"
		}
		rt.Series = append(rt.Series, meanSeries(name, hotSkews, [][]float64{rts}))
	}
	return lat, rt, nil
}

// hotCell is one (arm, skew) combination's measured tail latency.
type hotCell struct {
	qp50, qp99 float64 // Search latency percentiles, microseconds
	up50, up99 float64 // update (epoch-CAS Insert) percentiles
}

// hotOp is one scheduled operation of the measured phase.
type hotOp struct {
	key    float64
	update bool
}

// hotSchedule draws one rep's operation sequence, so every arm replays
// the identical keys in the identical order and the workers only
// strip-mine it.
func hotSchedule(o Options, keys []float64, s float64, n int, rep int64) ([]hotOp, error) {
	arr, err := workload.NewArrivals(keys, s, o.Seed+11+rep)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed + 13 + rep))
	ops := make([]hotOp, n)
	for i := range ops {
		ops[i] = hotOp{key: arr.Next(), update: rng.Intn(100) < hotUpdatePct}
	}
	return ops, nil
}

// measureHotCell boots a 4-node cluster, bulk-loads the tree, and times
// the concurrent skewed phase.
func measureHotCell(o Options, size int, s float64, plane bool) (hotCell, error) {
	var cell hotCell
	cl, err := startWireCluster(4, nil)
	if err != nil {
		return cell, err
	}
	defer cl.close()
	var copts []tcpnet.Option
	if plane {
		copts = append(copts, tcpnet.WithReplicas(2), tcpnet.WithCounters(o.Agg))
	}
	c, err := tcpnet.DialContext(context.Background(), cl.addrs, copts...)
	if err != nil {
		return cell, err
	}
	defer func() { _ = c.Close() }()

	cfg := lht.Config{
		SplitThreshold: o.Theta,
		Depth:          o.Depth,
		LeafCache:      true,
		Aggregate:      o.Agg,
	}
	if plane {
		cfg.HotSplitRate = hotSplitRate
		cfg.CoalesceGets = true
	}
	ix, err := lht.New(c, cfg)
	if err != nil {
		return cell, err
	}

	// Build through the batch plane: it does not touch the rate
	// estimator, so an in-process build running at memory speed cannot
	// masquerade as hot traffic, and with replication on it leaves every
	// leaf on its full holder set before the clock starts.
	recs := workload.NewGenerator(workload.Uniform, o.Seed).Records(size)
	keys := make([]float64, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	if _, err := ix.BulkLoad(recs); err != nil {
		return cell, fmt.Errorf("build: %w", err)
	}
	// Warm the leaf cache across the key space, so the measured phase
	// compares steady-state lookups, not cold-cache descents.
	for i := 0; i < len(keys); i += 7 {
		if _, _, err := ix.Search(keys[i]); err != nil {
			return cell, fmt.Errorf("warmup search: %w", err)
		}
	}

	// o.Trials reps of the concurrent phase against the same tree, all
	// samples pooled: the tail events (a burst of CAS retries, a GC
	// pause) are episodic, and one short phase's p99 rides on whether it
	// caught one.
	var qs, us []time.Duration
	for rep := 0; rep < o.Trials; rep++ {
		ops, err := hotSchedule(o, keys, s, 8*o.Queries, int64(rep))
		if err != nil {
			return cell, err
		}
		q, u, err := runHotPhase(ix, ops)
		if err != nil {
			return cell, err
		}
		qs = append(qs, q...)
		us = append(us, u...)
	}
	cell.qp50, cell.qp99 = pctileUS(qs, 0.50), pctileUS(qs, 0.99)
	cell.up50, cell.up99 = pctileUS(us, 0.50), pctileUS(us, 0.99)
	return cell, nil
}

// runHotPhase strip-mines the schedule across hotWorkers goroutines and
// returns the per-class latency samples.
func runHotPhase(ix *lht.Index, ops []hotOp) (qs, us []time.Duration, err error) {
	upd := []byte("hot-update")
	var next atomic.Int64
	qLat := make([][]time.Duration, hotWorkers)
	uLat := make([][]time.Duration, hotWorkers)
	errs := make([]error, hotWorkers)
	var wg sync.WaitGroup
	for w := 0; w < hotWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ops) {
					return
				}
				op := ops[i]
				var opErr error
				t0 := time.Now()
				if op.update {
					_, opErr = ix.Insert(record.Record{Key: op.key, Value: upd})
				} else {
					_, _, opErr = ix.Search(op.key)
				}
				d := time.Since(t0)
				if opErr != nil {
					errs[w] = opErr
					return
				}
				if op.update {
					uLat[w] = append(uLat[w], d)
				} else {
					qLat[w] = append(qLat[w], d)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	for w := 0; w < hotWorkers; w++ {
		qs = append(qs, qLat[w]...)
		us = append(us, uLat[w]...)
	}
	return qs, us, nil
}

// pctileUS returns the p-quantile of the samples in microseconds.
func pctileUS(ds []time.Duration, p float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(sorted[int(float64(len(sorted)-1)*p)].Nanoseconds()) / 1000
}

// hotCostCell replays the plane-off workload serially over the
// instrumented local substrate and returns the client-charged round
// trips — fully deterministic, so the perf gate can diff it.
func hotCostCell(o Options, size int, s float64, cache bool) (float64, error) {
	ix, err := lht.New(dht.NewLocal(), lht.Config{
		SplitThreshold: o.Theta,
		Depth:          o.Depth,
		LeafCache:      cache,
		Aggregate:      o.Agg,
	})
	if err != nil {
		return 0, err
	}
	recs := workload.NewGenerator(workload.Uniform, o.Seed).Records(size)
	keys := make([]float64, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
		if _, err := ix.Insert(r); err != nil {
			return 0, err
		}
	}
	ops, err := hotSchedule(o, keys, s, o.Queries, 0)
	if err != nil {
		return 0, err
	}
	for _, op := range ops {
		if op.update {
			if _, err := ix.Insert(record.Record{Key: op.key, Value: []byte("u")}); err != nil {
				return 0, err
			}
		} else if _, _, err := ix.Search(op.key); err != nil {
			return 0, err
		}
	}
	return float64(ix.Metrics().Flat().RoundTrips()), nil
}
