package tcpnet

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"lht/internal/dht"
	"lht/internal/metrics"
)

// Server is one storage node: a byte store behind the framed binary
// protocol (frame.go), with the legacy gob protocol auto-detected per
// connection — a connection that opens with the "LHT2" magic speaks
// frames, anything else speaks gob, and both land on the same store.
// Create with NewServer, start with Serve, stop with Close.
type Server struct {
	mu sync.Mutex
	// store holds tagged values (tagRaw/tagGob prefix, see frame.go), the
	// framed protocol's value form; the gob handler wraps and unwraps the
	// tag so both wire formats interoperate on one store.
	store map[string][]byte
	ln    net.Listener
	conns map[net.Conn]struct{}
	done  bool

	// mem is the gossip participant (nil until EnableMembership); hints is
	// the hinted-handoff park: holder address -> key -> the tagged value a
	// failed fan-out left for it (see membership.go).
	mem   *Membership
	hints map[string]map[string][]byte

	c metrics.Counters

	wg sync.WaitGroup
}

// NewServer returns a server with an empty store.
func NewServer() *Server {
	return &Server{
		store: make(map[string][]byte),
		conns: make(map[net.Conn]struct{}),
	}
}

// Metrics returns the node's served-traffic counters: every routed
// request charges one lookup (Write is free, per the cost model), misses
// count as failed gets, and batch requests feed the batch counters.
// cmd/lht-node serves them on its /metrics endpoint.
func (s *Server) Metrics() metrics.Snapshot { return s.c.Snapshot() }

// Counters exposes the live counters for chaining or export.
func (s *Server) Counters() *metrics.Counters { return &s.c }

// Serve accepts connections on ln until Close is called. It blocks; run
// it in the caller's goroutine of choice (cmd/lht-node simply calls it
// from main).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return errors.New("tcpnet: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.done
			s.mu.Unlock()
			if done {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Close stops accepting, closes open connections, and waits for handlers
// to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Len returns the number of stored keys.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.store)
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	// Protocol detection: framed binary connections open with the magic,
	// legacy gob streams start with a gob type descriptor that cannot
	// collide with it. Peeking leaves the bytes for the gob decoder.
	br := bufio.NewReaderSize(conn, wireBufSize)
	magic, err := br.Peek(len(wireMagic))
	if err != nil {
		return // connection died before identifying itself
	}
	if string(magic) == wireMagic {
		_, _ = br.Discard(len(wireMagic))
		s.handleBinary(conn, br)
		return
	}
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection torn down mid-request; nothing to answer.
				return
			}
			return
		}
		if err := enc.Encode(s.apply(req)); err != nil {
			return
		}
	}
}

// tagWrap converts a legacy wire value (gob bytes) into the tagged form
// the store holds.
func tagWrap(val []byte) []byte {
	out := make([]byte, 1+len(val))
	out[0] = tagGob
	copy(out[1:], val)
	return out
}

// tagWrapEpoch is tagWrap for a legacy value whose request carried the
// value's own epoch: it produces the same epoch-tagged byte form the
// framed wire stores, so the two wires leave byte-identical stores.
func tagWrapEpoch(val []byte, epoch uint64, known bool) []byte {
	if !known {
		return tagWrap(val)
	}
	out := make([]byte, 0, 2+binary.MaxVarintLen64+len(val))
	out = append(out, tagEpoch)
	out = binary.AppendUvarint(out, epoch)
	out = append(out, tagGob)
	return append(out, val...)
}

// storedEpoch reads the CAS epoch off a stored tagged value: the varint
// after a tagEpoch prefix, or 0 for untagged values (matching
// dht.EpochOf's treatment of values without a version).
func storedEpoch(v []byte) uint64 {
	if len(v) < 2 || v[0] != tagEpoch {
		return 0
	}
	e, n := binary.Uvarint(v[1:])
	if n <= 0 {
		return 0
	}
	return e
}

// detagValue converts a stored tagged value into the legacy wire form:
// gob bytes travel as-is, raw []byte values are gob-encoded so a legacy
// client can decode a value a framed client stored. The server never
// decodes gob itself — it stays a pure byte store.
func detagValue(v []byte) ([]byte, error) {
	if len(v) == 0 {
		return nil, errors.New("tcpnet: corrupt stored value")
	}
	switch v[0] {
	case tagGob:
		return v[1:], nil
	case tagRaw:
		return encodeValue(dht.Value(v[1:]))
	case tagEpoch:
		// Strip the CAS epoch prefix; the decoded value carries its own
		// version, so a legacy client loses nothing.
		_, n := binary.Uvarint(v[1:])
		if n <= 0 {
			return nil, errors.New("tcpnet: corrupt stored value")
		}
		return detagValue(v[1+n:])
	default:
		return nil, fmt.Errorf("tcpnet: unknown stored value tag %d", v[0])
	}
}

// errNotFound is the wire form of dht.ErrNotFound.
const errNotFound = "not found"

// errCASConflict is the wire form of dht.ErrCASConflict; the response's
// ConflictExists/Winner fields carry the detail.
const errCASConflict = "cas conflict"

// casConflictResponse builds the legacy wire form of a CAS conflict.
func casConflictResponse(exists bool, winner uint64) response {
	return response{Err: errCASConflict, ConflictExists: exists, Winner: winner}
}

func (s *Server) apply(req request) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case opPing:
		return response{Found: true}
	case opGet:
		s.c.AddLookups(1)
		v, ok := s.store[req.Key]
		if !ok {
			s.c.AddFailedGets(1)
			return response{Err: errNotFound}
		}
		data, err := detagValue(v)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Found: true, Val: data}
	case opPut:
		s.c.AddLookups(1)
		s.store[req.Key] = tagWrapEpoch(req.Val, req.Epoch, req.EpochKnown)
		return response{Found: true}
	case opTake:
		s.c.AddLookups(1)
		v, ok := s.store[req.Key]
		if !ok {
			s.c.AddFailedGets(1)
			return response{Err: errNotFound}
		}
		data, err := detagValue(v)
		if err != nil {
			return response{Err: err.Error()}
		}
		delete(s.store, req.Key)
		return response{Found: true, Val: data}
	case opRemove:
		s.c.AddLookups(1)
		delete(s.store, req.Key)
		return response{Found: true}
	case opWrite:
		// Free in the cost model: the client already routed here.
		if _, ok := s.store[req.Key]; !ok {
			return response{Err: errNotFound}
		}
		s.store[req.Key] = tagWrapEpoch(req.Val, req.Epoch, req.EpochKnown)
		return response{Found: true}
	case opPutIf:
		s.c.AddLookups(1)
		cur, ok := s.store[req.Key]
		if !ok {
			return casConflictResponse(false, 0)
		}
		if w := storedEpoch(cur); w != req.IfEpoch {
			return casConflictResponse(true, w)
		}
		s.store[req.Key] = tagWrapEpoch(req.Val, req.Epoch, req.EpochKnown)
		return response{Found: true}
	case opCreateIf:
		s.c.AddLookups(1)
		if cur, ok := s.store[req.Key]; ok {
			return casConflictResponse(true, storedEpoch(cur))
		}
		s.store[req.Key] = tagWrapEpoch(req.Val, req.Epoch, req.EpochKnown)
		return response{Found: true}
	case opRemoveIf:
		s.c.AddLookups(1)
		cur, ok := s.store[req.Key]
		if !ok {
			return response{Found: true} // already gone: the removal is done
		}
		if w := storedEpoch(cur); w != req.IfEpoch {
			return casConflictResponse(true, w)
		}
		delete(s.store, req.Key)
		return response{Found: true}
	case opWriteIf:
		// Free in the cost model, like opWrite.
		cur, ok := s.store[req.Key]
		if !ok {
			return response{Err: errNotFound}
		}
		if w := storedEpoch(cur); w != req.IfEpoch {
			return casConflictResponse(true, w)
		}
		s.store[req.Key] = tagWrapEpoch(req.Val, req.Epoch, req.EpochKnown)
		return response{Found: true}
	case opGetBatch:
		s.c.AddLookups(int64(len(req.Keys)))
		s.c.AddBatchOps(1)
		s.c.AddBatchedKeys(int64(len(req.Keys)))
		out := make([]batchReply, len(req.Keys))
		for i, k := range req.Keys {
			v, ok := s.store[k]
			if !ok {
				s.c.AddFailedGets(1)
				out[i] = batchReply{Err: errNotFound}
				continue
			}
			data, err := detagValue(v)
			if err != nil {
				out[i] = batchReply{Err: err.Error()}
				continue
			}
			out[i] = batchReply{Val: data}
		}
		return response{Found: true, Batch: out}
	case opPutBatch:
		s.c.AddLookups(int64(len(req.KVs)))
		s.c.AddBatchOps(1)
		s.c.AddBatchedKeys(int64(len(req.KVs)))
		for _, kv := range req.KVs { // in order: a duplicate key's last pair wins
			s.store[kv.Key] = tagWrapEpoch(kv.Val, kv.Epoch, kv.EpochKnown)
		}
		return response{Found: true, Batch: make([]batchReply, len(req.KVs))}
	default:
		return response{Err: "unknown op"}
	}
}
