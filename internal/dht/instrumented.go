package dht

import (
	"context"
	"errors"

	"lht/internal/metrics"
)

// Instrumented wraps a DHT and charges every routed operation to a
// metrics.Counters according to the paper's cost model: Get, Put, Take and
// Remove each cost one DHT-lookup; failed Gets are additionally counted so
// experiments can report them; Write is free. Operations that end in
// context cancellation or deadline expiry are also tallied
// (Cancellations / DeadlineExceeded), so fault experiments can separate
// "gave up" from "failed".
type Instrumented struct {
	inner DHT
	c     *metrics.Counters
}

var (
	_ DHT     = (*Instrumented)(nil)
	_ Batcher = (*Instrumented)(nil)
)

// NewInstrumented wraps inner, charging costs to c. c must not be nil.
func NewInstrumented(inner DHT, c *metrics.Counters) *Instrumented {
	return &Instrumented{inner: inner, c: c}
}

// Counters returns the counter set this wrapper charges.
func (d *Instrumented) Counters() *metrics.Counters { return d.c }

// note tallies the context-outcome counters for a finished operation.
func (d *Instrumented) note(err error) {
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		d.c.AddCancellations(1)
	case errors.Is(err, context.DeadlineExceeded):
		d.c.AddDeadlineExceeded(1)
	}
}

// Get implements DHT, counting one lookup (and one failed get on miss).
func (d *Instrumented) Get(ctx context.Context, key string) (Value, error) {
	d.c.AddLookups(1)
	v, err := d.inner.Get(ctx, key)
	if errors.Is(err, ErrNotFound) {
		d.c.AddFailedGets(1)
	}
	d.note(err)
	return v, err
}

// Put implements DHT, counting one lookup.
func (d *Instrumented) Put(ctx context.Context, key string, v Value) error {
	d.c.AddLookups(1)
	err := d.inner.Put(ctx, key, v)
	d.note(err)
	return err
}

// Take implements DHT, counting one lookup.
func (d *Instrumented) Take(ctx context.Context, key string) (Value, error) {
	d.c.AddLookups(1)
	v, err := d.inner.Take(ctx, key)
	if errors.Is(err, ErrNotFound) {
		d.c.AddFailedGets(1)
	}
	d.note(err)
	return v, err
}

// Remove implements DHT, counting one lookup.
func (d *Instrumented) Remove(ctx context.Context, key string) error {
	d.c.AddLookups(1)
	err := d.inner.Remove(ctx, key)
	d.note(err)
	return err
}

// GetBatch implements Batcher. When the wrapped substrate batches
// natively, each carried key is still charged as one lookup — batching
// saves round trips, never bandwidth — and the batch itself is tallied in
// BatchOps/BatchedKeys. Otherwise the batch decomposes through this
// wrapper's own per-op Get, which charges each key as it goes.
func (d *Instrumented) GetBatch(ctx context.Context, keys []string) ([]Value, []error) {
	if len(keys) == 0 {
		return nil, nil
	}
	b, ok := d.inner.(Batcher)
	if !ok {
		vals := make([]Value, len(keys))
		errs := make([]error, len(keys))
		for i, k := range keys {
			vals[i], errs[i] = d.Get(ctx, k)
		}
		return vals, errs
	}
	d.c.AddLookups(int64(len(keys)))
	d.c.AddBatchOps(1)
	d.c.AddBatchedKeys(int64(len(keys)))
	vals, errs := b.GetBatch(ctx, keys)
	for _, err := range errs {
		if errors.Is(err, ErrNotFound) {
			d.c.AddFailedGets(1)
		}
		d.note(err)
	}
	return vals, errs
}

// PutBatch implements Batcher with the same charging rules as GetBatch.
func (d *Instrumented) PutBatch(ctx context.Context, kvs []KV) []error {
	if len(kvs) == 0 {
		return nil
	}
	b, ok := d.inner.(Batcher)
	if !ok {
		errs := make([]error, len(kvs))
		for i, kv := range kvs {
			errs[i] = d.Put(ctx, kv.Key, kv.Val)
		}
		return errs
	}
	d.c.AddLookups(int64(len(kvs)))
	d.c.AddBatchOps(1)
	d.c.AddBatchedKeys(int64(len(kvs)))
	errs := b.PutBatch(ctx, kvs)
	for _, err := range errs {
		d.note(err)
	}
	return errs
}

// Write implements DHT; it is free in the cost model.
func (d *Instrumented) Write(ctx context.Context, key string, v Value) error {
	err := d.inner.Write(ctx, key, v)
	d.note(err)
	return err
}
