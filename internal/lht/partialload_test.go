package lht

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"lht/internal/dht"
	"lht/internal/record"
)

// allowThen lets a fixed number of puts through, then runs a trip action
// once and fails every later put with the error it returns. It does not
// implement dht.Batcher, so batched shippers decompose through it
// per-op in slice order — making the failure point deterministic.
type allowThen struct {
	dht.DHT
	allow int
	trip  func() error
	err   error
}

func (a *allowThen) Put(ctx context.Context, key string, v dht.Value) error {
	if a.allow > 0 {
		a.allow--
		return a.DHT.Put(ctx, key, v)
	}
	if a.err == nil {
		a.err = a.trip()
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return a.err
}

func partialLoadRecords(n int) []record.Record {
	rng := rand.New(rand.NewSource(7))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{Key: rng.Float64(), Value: []byte{byte(i)}}
	}
	return recs
}

// TestBulkLoadPartialOnCancellation: a context cancelled mid-load leaves
// the shipped leaves in place and reports a *PartialLoadError wrapping
// both ErrPartialLoad and the cancellation; a retry then refuses with
// ErrNotEmpty because the partial tree is real data.
func TestBulkLoadPartialOnCancellation(t *testing.T) {
	inner := dht.NewLocal()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Allow the bootstrap probe machinery and the first two leaf puts,
	// then cancel. BatchSize far above the leaf count keeps the whole
	// ship in one chunk, decomposed per-op through the wrapper.
	d := &allowThen{DHT: inner, allow: 2, trip: func() error { cancel(); return context.Canceled }}
	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20, BatchSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ix.BulkLoadContext(ctx, partialLoadRecords(200))
	if err == nil {
		t.Fatal("cancelled bulk load succeeded")
	}
	if !errors.Is(err, ErrPartialLoad) {
		t.Fatalf("err = %v, want ErrPartialLoad in the chain", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must still wrap the cancellation cause", err)
	}
	var ple *PartialLoadError
	if !errors.As(err, &ple) {
		t.Fatalf("err = %T, want *PartialLoadError", err)
	}
	if ple.Shipped < 1 || ple.Shipped >= ple.Total {
		t.Fatalf("Shipped/Total = %d/%d, want a strict partial", ple.Shipped, ple.Total)
	}

	// The shipped leaves are real data: a fresh load attempt must refuse.
	ix2, err := New(inner, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix2.BulkLoad(partialLoadRecords(10)); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("BulkLoad over a partial tree = %v, want ErrNotEmpty", err)
	}
}

// TestBulkLoadPartialPrefersRealFault: when a substrate fault (not a
// cancellation) kills the load, that fault is the wrapped cause.
func TestBulkLoadPartialPrefersRealFault(t *testing.T) {
	// One put for the bootstrap bucket, one for the first leaf.
	d := &allowThen{DHT: dht.NewLocal(), allow: 2, trip: func() error { return errInjected }}
	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20, BatchSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ix.BulkLoad(partialLoadRecords(200))
	if !errors.Is(err, ErrPartialLoad) || !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want ErrPartialLoad wrapping the injected fault", err)
	}
}

// TestBulkLoadNothingShippedIsNotPartial: a load that fails before any
// leaf lands reports the plain cause, not ErrPartialLoad — there is
// nothing partial about an empty tree.
func TestBulkLoadNothingShippedIsNotPartial(t *testing.T) {
	// Only the bootstrap put goes through; every leaf put fails.
	d := &allowThen{DHT: dht.NewLocal(), allow: 1, trip: func() error { return errInjected }}
	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 20, BatchSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ix.BulkLoad(partialLoadRecords(50))
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
	if errors.Is(err, ErrPartialLoad) {
		t.Fatalf("err = %v claims a partial load with zero leaves shipped", err)
	}
}
