package lht

import (
	"encoding/binary"
	"fmt"
	"math"

	"lht/internal/record"
	"lht/internal/sfc"
)

// This file is the public face of the multi-dimensional extension the
// paper's footnote 1 sketches: two-dimensional indexing on top of the
// one-dimensional index via a Z-order space-filling curve.

// Point is a two-dimensional item in the unit square [0,1) x [0,1).
type Point struct {
	X, Y  float64
	Value []byte
}

// Rect is a half-open query rectangle [X0, X1) x [Y0, Y1).
type Rect = sfc.Rect

// GeoConfig tunes a GeoIndex.
type GeoConfig struct {
	// Index is the underlying one-dimensional index configuration. Its
	// Depth should be at least 2*Bits to let the tree separate
	// individual grid cells; NewGeoIndex raises it if needed.
	Index Config
	// Bits is the per-dimension grid resolution (1..26, default 16).
	Bits int
	// MaxSpans bounds the per-query curve decomposition; each span costs
	// one LHT range query (default 32).
	MaxSpans int
}

// GeoIndex is a two-dimensional index over a DHT: points are Z-order
// encoded into LHT data keys, rectangle queries decompose into curve
// spans served by LHT range queries and post-filtered exactly.
//
// Points are unique per grid cell: inserting a second point into the same
// cell replaces the first (pick Bits high enough for the data density).
type GeoIndex struct {
	ix       *Index
	curve    sfc.Curve
	maxSpans int
}

// NewGeoIndex creates a two-dimensional index over the substrate.
func NewGeoIndex(d DHT, cfg GeoConfig) (*GeoIndex, error) {
	if cfg.Bits == 0 {
		cfg.Bits = 16
	}
	if cfg.MaxSpans == 0 {
		cfg.MaxSpans = 32
	}
	curve, err := sfc.NewCurve(cfg.Bits)
	if err != nil {
		return nil, err
	}
	if cfg.Index.SplitThreshold == 0 {
		cfg.Index = DefaultConfig()
	}
	if cfg.Index.Depth < 2*cfg.Bits {
		cfg.Index.Depth = 2 * cfg.Bits
	}
	ix, err := New(d, cfg.Index)
	if err != nil {
		return nil, err
	}
	return &GeoIndex{ix: ix, curve: curve, maxSpans: cfg.MaxSpans}, nil
}

// Index exposes the underlying one-dimensional index (for metrics and
// inspection).
func (g *GeoIndex) Index() *Index { return g.ix }

// packPoint stores exact coordinates ahead of the payload so queries can
// filter without precision loss.
func packPoint(p Point) []byte {
	buf := make([]byte, 16+len(p.Value))
	binary.BigEndian.PutUint64(buf, math.Float64bits(p.X))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(p.Y))
	copy(buf[16:], p.Value)
	return buf
}

func unpackPoint(v []byte) (Point, error) {
	if len(v) < 16 {
		return Point{}, fmt.Errorf("lht: geo record payload too short (%d bytes)", len(v))
	}
	return Point{
		X:     math.Float64frombits(binary.BigEndian.Uint64(v)),
		Y:     math.Float64frombits(binary.BigEndian.Uint64(v[8:])),
		Value: v[16:],
	}, nil
}

// Insert adds a point (replacing any point in the same grid cell).
func (g *GeoIndex) Insert(p Point) (Cost, error) {
	key, err := g.curve.Encode(p.X, p.Y)
	if err != nil {
		return Cost{}, err
	}
	return g.ix.Insert(Record{Key: key, Value: packPoint(p)})
}

// Delete removes the point in the grid cell containing (x, y), or returns
// ErrKeyNotFound.
func (g *GeoIndex) Delete(x, y float64) (Cost, error) {
	key, err := g.curve.Encode(x, y)
	if err != nil {
		return Cost{}, err
	}
	return g.ix.Delete(key)
}

// Get returns the point stored in the grid cell containing (x, y).
func (g *GeoIndex) Get(x, y float64) (Point, Cost, error) {
	key, err := g.curve.Encode(x, y)
	if err != nil {
		return Point{}, Cost{}, err
	}
	rec, cost, err := g.ix.Get(key)
	if err != nil {
		return Point{}, cost, err
	}
	p, err := unpackPoint(rec.Value)
	return p, cost, err
}

// SearchRect returns every point inside the rectangle. The reported Cost
// sums the underlying LHT range queries; Steps takes the maximum, as the
// per-span queries are independent and proceed in parallel.
func (g *GeoIndex) SearchRect(r Rect) ([]Point, Cost, error) {
	spans, err := g.curve.CoverRect(r, g.maxSpans)
	if err != nil {
		return nil, Cost{}, err
	}
	var (
		out   []Point
		total Cost
	)
	for _, s := range spans {
		recs, cost, err := g.ix.Range(s.Lo, s.Hi)
		if err != nil {
			return nil, total, err
		}
		total.Lookups += cost.Lookups
		if cost.Steps > total.Steps {
			total.Steps = cost.Steps
		}
		out, err = appendInRect(out, recs, r)
		if err != nil {
			return nil, total, err
		}
	}
	return out, total, nil
}

func appendInRect(dst []Point, recs []record.Record, r Rect) ([]Point, error) {
	for _, rec := range recs {
		p, err := unpackPoint(rec.Value)
		if err != nil {
			return dst, err
		}
		if r.Contains(p.X, p.Y) {
			dst = append(dst, p)
		}
	}
	return dst, nil
}
