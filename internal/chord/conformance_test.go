package chord

import (
	"testing"

	"lht/internal/dht"
	"lht/internal/dht/dhttest"
)

func TestRingConformance(t *testing.T) {
	dhttest.Run(t, func(t *testing.T) dht.DHT {
		r, err := NewRing(8, Config{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}, dhttest.Options{Keys: 120})
}

func TestReplicatedRingConformance(t *testing.T) {
	dhttest.Run(t, func(t *testing.T) dht.DHT {
		r, err := NewRing(8, Config{Seed: 100, Replicas: 3})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}, dhttest.Options{Keys: 120})
}
