package lht

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"lht/internal/bitlabel"
	"lht/internal/chord"
	"lht/internal/dht"
	"lht/internal/keyspace"
	"lht/internal/record"
)

// TestSetErrPrefersRootCause pins the collector's error-preference rule:
// first error wins, except that a stored cancellation yields to a later
// real error (and never the other way around).
func TestSetErrPrefersRootCause(t *testing.T) {
	real1 := errors.New("real fault 1")
	real2 := errors.New("real fault 2")
	cancelled := fmt.Errorf("branch: %w", context.Canceled)
	expired := fmt.Errorf("branch: %w", context.DeadlineExceeded)

	cases := []struct {
		name string
		errs []error
		want error
	}{
		{"first real wins", []error{real1, real2}, real1},
		{"real beats earlier cancellation", []error{cancelled, real1}, real1},
		{"real beats earlier deadline", []error{expired, real1}, real1},
		{"real survives later cancellation", []error{real1, cancelled}, real1},
		{"first cancellation kept if nothing better", []error{cancelled, expired}, cancelled},
		{"only cancellation", []error{expired}, expired},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col := &rangeCollector{}
			for _, err := range tc.errs {
				col.setErr(err)
			}
			if _, _, got := col.snapshot(); got != tc.want {
				t.Fatalf("surfaced %v, want %v", got, tc.want)
			}
		})
	}
}

// cancelOnKey instruments one key's fetch: it cancels the query's context
// before the fetch proceeds, then delays so the sibling branches have
// observed the cancellation by the time this branch's real fault lands.
// The delegate call runs on a background context — the fault was already
// in flight when the cancellation hit.
type cancelOnKey struct {
	dht.DHT
	cancel context.CancelFunc
	badKey string
}

func (c *cancelOnKey) Get(ctx context.Context, key string) (dht.Value, error) {
	if key == c.badKey {
		c.cancel()
		time.Sleep(50 * time.Millisecond)
		return c.DHT.Get(context.Background(), key)
	}
	return c.DHT.Get(ctx, key)
}

// TestParallelRangeSurfacesChordFaultOverCancellation is the regression
// for the error-preference fix: under ParallelRange, one branch hitting a
// dead Chord peer makes the sibling branches fail with the collateral
// context cancellation first, and the query used to surface whichever
// landed first. The root-cause fault must win regardless of arrival
// order.
func TestParallelRangeSurfacesChordFaultOverCancellation(t *testing.T) {
	ring, err := chord.NewRing(12, chord.Config{Replicas: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 5b hand tree, stored on the ring: Range(0.3, 0.6) is the
	// general case 3, descending into #00 and #01 as two parallel
	// branches.
	for _, ls := range []string{"#000", "#0010", "#0011", "#0100", "#0101", "#011"} {
		b := mustBucket(t, ls)
		if err := ring.Put(context.Background(), b.Label.Name().Key(), b); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Kill the unreplicated holder of the right branch's entry leaf, and
	// rig its fetch to cancel the query first: the left branch's
	// cancellation noise is guaranteed to be recorded before the real
	// fault.
	ref, _, err := ring.Lookup(context.Background(), "#01")
	if err != nil {
		t.Fatal(err)
	}
	ring.Fail(ref.Addr)
	d := &cancelOnKey{DHT: ring, cancel: cancel, badKey: "#01"}

	ix, err := New(d, Config{SplitThreshold: 8, MergeThreshold: 0, Depth: 14, ParallelRange: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ix.RangeContext(ctx, 0.3, 0.6)
	if err == nil {
		t.Fatal("range over a failed holder succeeded")
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("collateral cancellation surfaced instead of the root cause: %v", err)
	}
	if !dht.IsTransient(err) {
		t.Fatalf("root cause not the transient chord fault: %v", err)
	}
}

// mustBucket builds a one-record bucket for a hand-specified leaf label
// (the record sits at the interval midpoint).
func mustBucket(t *testing.T, ls string) *Bucket {
	t.Helper()
	label := bitlabel.MustParse(ls)
	iv := keyspace.IntervalOf(label)
	return &Bucket{
		Label:   label,
		Records: []record.Record{{Key: iv.Lo + iv.Width()/2, Value: []byte(ls)}},
	}
}
