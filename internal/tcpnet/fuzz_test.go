package tcpnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"lht/internal/dht"
)

// FuzzDecodeFrame drives arbitrary bytes through the full server-side
// decode path: framing (readFrameBody), request parsing and service
// (applyFrame), and client-side response parsing. Truncated, oversized
// and garbage inputs must error or answer statusErr — never panic, and
// never allocate beyond the input's actual size (readFrameBody validates
// the length field before allocating; cursor.count bounds batch counts by
// the bytes that remain).
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed frames of every op, so the corpus mutates from inside
	// the grammar, not just outside it.
	get := appendLenString(nil, "key")
	put := appendLenString(nil, "key")
	put = append(put, tagRaw)
	put = append(put, []byte("value")...)
	getBatch := binary.AppendUvarint(nil, 2)
	getBatch = appendLenString(getBatch, "a")
	getBatch = appendLenString(getBatch, "b")
	putBatch := binary.AppendUvarint(nil, 1)
	putBatch = appendLenString(putBatch, "a")
	putBatch = appendLenBytes(putBatch, []byte{tagRaw, 'v'})
	seeds := [][]byte{
		buildFrame(1, dht.OpPing, nil),
		buildFrame(2, dht.OpGet, get),
		buildFrame(3, dht.OpPut, put),
		buildFrame(4, dht.OpTake, get),
		buildFrame(5, dht.OpRemove, get),
		buildFrame(6, dht.OpWrite, put),
		buildFrame(7, dht.OpGetBatch, getBatch),
		buildFrame(8, dht.OpPutBatch, putBatch),
		// Malformed shapes.
		{},
		{0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0xff, 1, 2, 3},
		buildFrame(9, 200, []byte("junk")),
		buildFrame(10, dht.OpGetBatch, binary.AppendUvarint(nil, 1<<60)),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		// The length field must never drive an allocation larger than the
		// input itself (plus the bounded header), no matter what it claims.
		if len(raw) >= 4 {
			if n := binary.BigEndian.Uint32(raw[:4]); n <= maxFrameLen && int(n) > len(raw) {
				// Claimed length exceeds what will arrive: must error.
				if _, err := readFrameBody(bufio.NewReader(bytes.NewReader(raw)), nil); err == nil {
					t.Fatal("truncated frame decoded without error")
				}
				return
			}
		}
		body, err := readFrameBody(bufio.NewReader(bytes.NewReader(raw)), nil)
		if err != nil {
			return // framing rejected it; that is a valid outcome
		}
		if len(body) > maxFrameLen {
			t.Fatalf("frame body %d bytes exceeds the limit", len(body))
		}

		// Serve the request; garbage payloads must answer, not panic.
		s := NewServer()
		resp := s.applyFrame(body, nil)
		if len(resp) < frameHeaderLen+4+1 {
			t.Fatalf("response frame too short: %d bytes", len(resp))
		}
		if got, want := binary.BigEndian.Uint64(resp[4:12]), binary.BigEndian.Uint64(body[:8]); got != want {
			t.Fatalf("response id %d does not echo request id %d", got, want)
		}

		// The response must itself be a well-formed frame the client-side
		// parser accepts structurally.
		rbody, err := readFrameBody(bufio.NewReader(bytes.NewReader(resp)), nil)
		if err != nil {
			t.Fatalf("server emitted an unreadable frame: %v", err)
		}
		c := cursor{b: rbody[frameHeaderLen:]}
		if _, err := c.u8(); err != nil {
			t.Fatalf("server emitted a status-less response: %v", err)
		}

		// And the mirrored payload parses under the batch slot grammar
		// when it claims to be a batch response (client symmetry: these
		// parsers also must not panic on anything the fuzzer reaches).
		op := dht.OpKind(body[8])
		if op == dht.OpGetBatch || op == dht.OpPutBatch {
			cc := cursor{b: rbody[frameHeaderLen:]}
			if st, _ := cc.u8(); st == statusOK {
				n, err := cc.count()
				if err != nil {
					t.Fatalf("batch response count: %v", err)
				}
				for i := 0; i < n; i++ {
					st, err := cc.u8()
					if err != nil {
						t.Fatalf("batch slot %d status: %v", i, err)
					}
					if st == statusNotFound {
						continue
					}
					if _, err := cc.lenBytes(); err != nil {
						t.Fatalf("batch slot %d payload: %v", i, err)
					}
				}
			}
		}
	})
}
