package chord

import (
	"testing"

	"lht/internal/dht"
	"lht/internal/dht/dhttest"
)

func TestRingConformance(t *testing.T) {
	dhttest.Run(t, func(t *testing.T) dht.DHT {
		r, err := NewRing(8, Config{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}, dhttest.Options{Keys: 120})
}

func TestReplicatedRingConformance(t *testing.T) {
	dhttest.Run(t, func(t *testing.T) dht.DHT {
		r, err := NewRing(8, Config{Seed: 100, Replicas: 3})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}, dhttest.Options{Keys: 120})
}

func TestRingConditionalConformance(t *testing.T) {
	dhttest.RunConditional(t, func(t *testing.T) dht.DHT {
		r, err := NewRing(8, Config{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}, dhttest.Options{})
}

func TestReplicatedRingConditionalConformance(t *testing.T) {
	// The CAS must hold across the whole replica set: a replicated write
	// is one atomic decision, not per-replica races.
	dhttest.RunConditional(t, func(t *testing.T) dht.DHT {
		r, err := NewRing(8, Config{Seed: 100, Replicas: 3})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}, dhttest.Options{})
}

func TestRingCrashPointsConformance(t *testing.T) {
	// Crash schedules must decompose the ring's batched rounds per key, so
	// injected faults land on the same logical ops as in a per-op run.
	dhttest.RunCrashPoints(t, func(t *testing.T) dht.DHT {
		r, err := NewRing(8, Config{Seed: 101})
		if err != nil {
			t.Fatal(err)
		}
		return r
	})
}
