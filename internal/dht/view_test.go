package dht

import (
	"reflect"
	"testing"
)

func TestMemberStateString(t *testing.T) {
	cases := map[MemberState]string{
		MemberAlive:    "alive",
		MemberSuspect:  "suspect",
		MemberDead:     "dead",
		MemberLeft:     "left",
		MemberState(9): "state(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", uint8(s), got, want)
		}
	}
	if !MemberAlive.Routable() || !MemberSuspect.Routable() {
		t.Error("alive and suspect must stay routable")
	}
	if MemberDead.Routable() || MemberLeft.Routable() {
		t.Error("dead and left must not be routable")
	}
}

func TestMemberSupersedes(t *testing.T) {
	// Higher incarnation wins regardless of state: a refutation at
	// incarnation 2 overrides a death rumor at incarnation 1.
	alive2 := Member{Addr: "a", State: MemberAlive, Incarnation: 2}
	dead1 := Member{Addr: "a", State: MemberDead, Incarnation: 1}
	if !alive2.supersedes(dead1) {
		t.Error("higher incarnation must supersede")
	}
	if dead1.supersedes(alive2) {
		t.Error("stale death rumor must not supersede a refutation")
	}
	// Within one incarnation the worse state wins; equal claims do not
	// supersede each other (merge must be idempotent).
	suspect1 := Member{Addr: "a", State: MemberSuspect, Incarnation: 1}
	alive1 := Member{Addr: "a", State: MemberAlive, Incarnation: 1}
	if !suspect1.supersedes(alive1) {
		t.Error("worse state must win within one incarnation")
	}
	if alive1.supersedes(suspect1) {
		t.Error("equal-incarnation alive must not shout down suspicion")
	}
	if alive1.supersedes(alive1) {
		t.Error("a claim must not supersede itself")
	}
}

func TestViewUpsertKeepsSortedOrder(t *testing.T) {
	var v ClusterView
	for _, addr := range []string{"c", "a", "b"} {
		if !v.Upsert(Member{Addr: addr, State: MemberAlive}) {
			t.Fatalf("inserting %q should change the view", addr)
		}
	}
	got := make([]string, len(v.Members))
	for i, m := range v.Members {
		got[i] = m.Addr
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("members = %v, want sorted %v", got, want)
	}
	// Re-asserting the same claim is a no-op.
	if v.Upsert(Member{Addr: "b", State: MemberAlive}) {
		t.Error("idempotent upsert must report unchanged")
	}
	// A stale weaker claim is rejected.
	v.Upsert(Member{Addr: "b", State: MemberDead, Incarnation: 0})
	if v.Upsert(Member{Addr: "b", State: MemberAlive, Incarnation: 0}) {
		t.Error("same-incarnation resurrection must be rejected")
	}
	if m, ok := v.Find("b"); !ok || m.State != MemberDead {
		t.Fatalf("Find(b) = %+v, %v; want dead entry", m, ok)
	}
	if _, ok := v.Find("zz"); ok {
		t.Error("Find of unknown addr must report absence")
	}
}

func TestViewMergeConverges(t *testing.T) {
	mk := func(ms ...Member) ClusterView {
		var v ClusterView
		for _, m := range ms {
			v.Upsert(m)
		}
		return v
	}
	a := mk(
		Member{Addr: "n1", State: MemberAlive, Incarnation: 1},
		Member{Addr: "n2", State: MemberSuspect, Incarnation: 0},
	)
	a.Epoch = 4
	b := mk(
		Member{Addr: "n2", State: MemberAlive, Incarnation: 1}, // refutation
		Member{Addr: "n3", State: MemberDead, Incarnation: 0},
	)
	b.Epoch = 2

	ac, bc := a.Clone(), b.Clone()
	if !ac.Merge(b) {
		t.Fatal("merge with new info must report change")
	}
	if !bc.Merge(a) {
		t.Fatal("reverse merge must also change")
	}
	if !reflect.DeepEqual(ac.Members, bc.Members) {
		t.Fatalf("merge must converge:\n a+b = %+v\n b+a = %+v", ac.Members, bc.Members)
	}
	if ac.Epoch != bc.Epoch {
		t.Fatalf("epochs diverged: %d vs %d", ac.Epoch, bc.Epoch)
	}
	if ac.Epoch <= 4 {
		t.Fatalf("merged epoch %d must advance past max input epoch", ac.Epoch)
	}
	// A second identical exchange is a fixed point: no change, no epoch step.
	before := ac.Epoch
	if ac.Merge(bc) {
		t.Error("merging an equal view must be a no-op")
	}
	if ac.Epoch != before {
		t.Errorf("no-op merge moved the epoch %d -> %d", before, ac.Epoch)
	}
	if got, want := ac.Alive(), []string{"n1", "n2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Alive() = %v, want %v", got, want)
	}
}

func TestViewCloneIsDeep(t *testing.T) {
	var v ClusterView
	v.Upsert(Member{Addr: "a", State: MemberAlive})
	c := v.Clone()
	c.Upsert(Member{Addr: "a", State: MemberDead})
	if m, _ := v.Find("a"); m.State != MemberAlive {
		t.Fatal("mutating a clone leaked into the original")
	}
}

func TestReplicaRepairAdd(t *testing.T) {
	r := ReplicaRepair{Probes: 1, Missing: 1, Restored: 1}
	r.Add(ReplicaRepair{Probes: 2, Missing: 3, Restored: 4})
	if r != (ReplicaRepair{Probes: 3, Missing: 4, Restored: 5}) {
		t.Fatalf("Add = %+v", r)
	}
}
