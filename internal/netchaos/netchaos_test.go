package netchaos

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				close(done)
				return
			}
			go func() { _, _ = io.Copy(c, c); _ = c.Close() }()
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close(); <-done }
}

func roundTrip(t *testing.T, c net.Conn, msg string) (string, error) {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	_, err := io.ReadFull(c, buf)
	return string(buf), err
}

// TestHealthyPassThrough: with no rules the plane is a transparent pipe.
func TestHealthyPassThrough(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Start()
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := roundTrip(t, c, "hello")
	if err != nil || got != "hello" {
		t.Fatalf("round trip = %q, %v", got, err)
	}
}

// TestRefuseDial: a RefuseDial rule rejects new connections immediately,
// and only within its window.
func TestRefuseDial(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Add(Rule{Addr: addr, Until: 50 * time.Millisecond, Effect: Effect{RefuseDial: true}})
	ch.Start()
	if _, err := ch.DialContext(context.Background(), "tcp", addr); err == nil {
		t.Fatal("dial inside the refuse window succeeded")
	}
	if n := ch.DialsRefused(); n != 1 {
		t.Fatalf("DialsRefused = %d, want 1", n)
	}
	time.Sleep(60 * time.Millisecond)
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatalf("dial after the window: %v", err)
	}
	_ = c.Close()
}

// TestBlackholeDial: dials hang until the context gives up, like a
// dropped SYN, and the context's error is surfaced.
func TestBlackholeDial(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Add(Rule{Addr: addr, Effect: Effect{BlackholeDial: true}})
	ch.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ch.DialContext(ctx, "tcp", addr)
	if err == nil {
		t.Fatal("black-holed dial succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("dial gave up after %v, want it to hang to the deadline", d)
	}
}

// TestLatency: a latency rule delays traffic by at least the configured
// amount.
func TestLatency(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Start()
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Healthy baseline first, then inject.
	if _, err := roundTrip(t, c, "warm"); err != nil {
		t.Fatal(err)
	}
	ch.Add(Rule{Addr: addr, Effect: Effect{Latency: 40 * time.Millisecond}})
	start := time.Now()
	if _, err := roundTrip(t, c, "slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 40ms", d)
	}
}

// TestJitterDeterministic: two planes with the same seed draw identical
// jitter sequences for a link; a different seed diverges.
func TestJitterDeterministic(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		ch := New(seed)
		var out []time.Duration
		for i := 0; i < 16; i++ {
			out = append(out, ch.jitterFor("10.0.0.1:99", 10*time.Millisecond))
		}
		return out
	}
	a, b, c := draw(7), draw(7), draw(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds drew identical jitter")
	}
}

// TestDropWritesIsOutboundPartition: writes report success, nothing
// arrives, and a read on the conn sees no echo within its deadline.
func TestDropWritesIsOutboundPartition(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Add(Rule{Addr: addr, Effect: Effect{DropWrites: true}})
	ch.Start()
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n, err := c.Write([]byte("void"))
	if err != nil || n != 4 {
		t.Fatalf("write into the void = %d, %v; want reported success", n, err)
	}
	if ch.WritesLost() != 1 {
		t.Fatalf("WritesLost = %d, want 1", ch.WritesLost())
	}
	_ = c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read returned data despite the dropped write")
	}
}

// TestDropReadsWithholdsThenReleases: the inbound half of an asymmetric
// partition. The echo is withheld while the window holds and delivered
// intact after it ends.
func TestDropReadsWithholdsThenReleases(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Add(Rule{Addr: addr, Until: 60 * time.Millisecond, Effect: Effect{DropReads: true}})
	ch.Start()
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	got, err := roundTrip(t, c, "later")
	if err != nil || got != "later" {
		t.Fatalf("round trip after window = %q, %v", got, err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("read returned after %v, want it withheld for the window", d)
	}
}

// TestDropReadsHonorsReadDeadline: a reader parked in a DropReads window
// must still observe its read deadline — the tcpnet handshake bounds its
// health-check ping with SetDeadline, and a half-open probe into an
// inbound partition has to fail within that bound, not hang for the
// whole drop window.
func TestDropReadsHonorsReadDeadline(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Add(Rule{Addr: addr, Effect: Effect{DropReads: true}}) // holds forever
	ch.Start()
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	// SetDeadline is what the tcpnet handshake uses; it must cover reads.
	_ = c.SetDeadline(time.Now().Add(40 * time.Millisecond))
	start := time.Now()
	buf := make([]byte, 4)
	_, err = c.Read(buf)
	if err == nil {
		t.Fatal("read inside an unbounded DropReads window returned data")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want os.ErrDeadlineExceeded", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net.Error timeout", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond || d > 2*time.Second {
		t.Fatalf("read returned after %v, want ~the 40ms deadline", d)
	}
}

// TestDropConnsSevers: an established connection dies at its next I/O
// once the rule activates.
func TestDropConnsSevers(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Start()
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := roundTrip(t, c, "warm"); err != nil {
		t.Fatal(err)
	}
	ch.Add(Rule{Addr: addr, Effect: Effect{DropConns: true}})
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write on a severed connection succeeded")
	}
}

// TestDupWrites: each write goes out twice; the echo comes back doubled.
func TestDupWrites(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Add(Rule{Addr: addr, Effect: Effect{DupWrites: true}})
	ch.Start()
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abab" {
		t.Fatalf("echo = %q, want duplicated \"abab\"", buf)
	}
	if ch.WritesDuped() != 1 {
		t.Fatalf("WritesDuped = %d, want 1", ch.WritesDuped())
	}
}

// TestFlapScheduleDeterministic: a duty-cycled rule's on/off pattern is
// a pure function of elapsed time — replaying the clock replays the
// schedule exactly.
func TestFlapScheduleDeterministic(t *testing.T) {
	r := Rule{Period: 20 * time.Millisecond, Duty: 0.5}
	pattern := func() string {
		var b strings.Builder
		for ms := 0; ms < 100; ms += 5 {
			if r.active(time.Duration(ms) * time.Millisecond) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	p1, p2 := pattern(), pattern()
	if p1 != p2 {
		t.Fatalf("flap pattern not replayable: %s vs %s", p1, p2)
	}
	if !strings.Contains(p1, "1") || !strings.Contains(p1, "0") {
		t.Fatalf("flap pattern %s never toggles", p1)
	}
	// 50%% duty at 20ms period sampled every 5ms: on,on,off,off repeating.
	if want := "11001100110011001100"; p1 != want {
		t.Fatalf("flap pattern = %s, want %s", p1, want)
	}
}

// TestScheduleBeforeStartIsHealthy: rules do not fire until Start.
func TestScheduleBeforeStartIsHealthy(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	ch.Add(Rule{Addr: addr, Effect: Effect{RefuseDial: true}})
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatalf("dial before Start refused: %v", err)
	}
	_ = c.Close()
}

// TestThrottlePaces: a tight bytes/sec cap stretches a large write.
func TestThrottlePaces(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	ch := New(1)
	// 64 KiB/sec: a 4 KiB write must take >= ~60ms.
	ch.Add(Rule{Addr: addr, Effect: Effect{ThrottleBps: 64 << 10}})
	ch.Start()
	c, err := ch.DialContext(context.Background(), "tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Write(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("throttled write took %v, want >= 50ms", d)
	}
}
