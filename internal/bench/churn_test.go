package bench

import (
	"testing"

	"lht/internal/workload"
)

// TestChurnAblation pins the A7 acceptance criteria: with Replicas 3 and
// a scrub pass, query success holds at 100% under 5% non-graceful churn
// plus injected torn mutations; with Replicas 1 the stranded shards make
// heavy churn visibly lossy; and the recovery machinery's cost is nonzero
// exactly when it runs.
func TestChurnAblation(t *testing.T) {
	o := testOptions()
	churns := []float64{0, 0.05, 0.25}
	succ, cost, err := RunChurnAblation(o, workload.Uniform, 24, 1<<10, churns)
	if err != nil {
		t.Fatal(err)
	}

	replicated := seriesByName(t, succ, "LHT replicas 3, scrub")
	bare := seriesByName(t, succ, "LHT replicas 1, no scrub")

	// Healthy ring: the planted tears are repaired (in-line or by the
	// scrub) and every query answers, in every variant.
	for _, s := range succ.Series {
		if s.Points[0].Y != 100 {
			t.Errorf("%s at 0%% churn: success %v%%, want 100%%", s.Name, s.Points[0].Y)
		}
	}
	// The headline: replication + scrub absorb 5% churn completely.
	if y := replicated.Points[1].Y; y != 100 {
		t.Errorf("replicas 3 + scrub at 5%% churn: success %v%%, want 100%%", y)
	}
	// Without replication, heavy churn strands shards no index-layer
	// recovery can rebuild.
	if y := bare.Points[2].Y; y >= 95 {
		t.Errorf("replicas 1 at 25%% churn: success %v%%, expected visible loss", y)
	}

	// Scrubbing costs lookups; those lookups buy the repairs.
	scrubCost := seriesByName(t, cost, "LHT replicas 3, scrub")
	noScrubCost := seriesByName(t, cost, "LHT replicas 3, no scrub")
	if scrubCost.Points[0].Y <= noScrubCost.Points[0].Y {
		t.Errorf("scrub cost %v should exceed in-line-only cost %v",
			scrubCost.Points[0].Y, noScrubCost.Points[0].Y)
	}
	// In-line read-repair alone also pays something on a torn tree.
	if noScrubCost.Points[0].Y <= 0 {
		t.Errorf("in-line repair cost = %v, want > 0 (tears were planted)", noScrubCost.Points[0].Y)
	}
}
