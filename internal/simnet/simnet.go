// Package simnet is the in-process network the simulated DHT substrates
// run on: a registry of addressable nodes with per-message accounting and
// failure injection. It stands in for the paper's LAN testbed; the
// index-layer measurements are network-scale independent (paper footnote
// 5), so the substrates only need faithful message *counts*, which simnet
// provides, plus the ability to take peers down to exercise churn.
//
// simnet is payload-agnostic: each substrate registers its node objects
// and performs direct method calls on what Send returns, charging one
// message per Send. Synchronous delivery keeps experiments deterministic.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

var (
	// ErrUnknownAddr reports a send to an address that was never
	// registered (or was unregistered).
	ErrUnknownAddr = errors.New("simnet: unknown address")
	// ErrUnreachable reports a send to a node currently down.
	ErrUnreachable = errors.New("simnet: peer unreachable")
)

// Network is the simulated network. Create with New.
type Network struct {
	mu    sync.RWMutex
	nodes map[string]any
	down  map[string]bool

	messages atomic.Int64
}

// New returns an empty network.
func New() *Network {
	return &Network{
		nodes: make(map[string]any),
		down:  make(map[string]bool),
	}
}

// Register attaches a node object to an address, replacing any previous
// registration and clearing its down flag.
func (n *Network) Register(addr string, node any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = node
	delete(n.down, addr)
}

// Unregister removes an address entirely (a departed peer).
func (n *Network) Unregister(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
	delete(n.down, addr)
}

// SetDown marks an address unreachable (true) or reachable (false)
// without removing it: an abrupt failure that stabilization must detect.
func (n *Network) SetDown(addr string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; !ok {
		return
	}
	if down {
		n.down[addr] = true
	} else {
		delete(n.down, addr)
	}
}

// Down reports whether the address is currently marked unreachable.
func (n *Network) Down(addr string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down[addr]
}

// Send delivers one message to addr: it charges one message and returns
// the registered node object for the caller to invoke directly, or
// ErrUnknownAddr / ErrUnreachable. The message is charged even when
// delivery fails - a timeout consumes bandwidth too.
func (n *Network) Send(addr string) (any, error) {
	n.messages.Add(1)
	n.mu.RLock()
	defer n.mu.RUnlock()
	node, ok := n.nodes[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAddr, addr)
	}
	if n.down[addr] {
		return nil, fmt.Errorf("%w: %q", ErrUnreachable, addr)
	}
	return node, nil
}

// Peek returns the node object without charging a message; for test and
// harness introspection only.
func (n *Network) Peek(addr string) (any, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	node, ok := n.nodes[addr]
	return node, ok
}

// Addrs returns all registered addresses (up or down), in no particular
// order.
func (n *Network) Addrs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	return out
}

// Messages returns the total messages sent so far.
func (n *Network) Messages() int64 { return n.messages.Load() }

// ResetMessages zeroes the message counter (between experiment phases).
func (n *Network) ResetMessages() { n.messages.Store(0) }
