package dhttest

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lht/internal/dht"
)

// RunCrashPoints drives the conformance battery for dht.WithCrashPoints
// over substrates from the factory: a rule-free wrapper must be fully
// transparent, and scheduled faults must fire deterministically at the
// same operation ordinals whether the workload runs per-op or batched.
// Substrates with a native batch plane should run this in addition to Run
// so the per-key decomposition is checked against their batching.
func RunCrashPoints(t *testing.T, factory func(t *testing.T) dht.DHT) {
	t.Helper()
	ctx := context.Background()

	t.Run("TransparentWithoutRules", func(t *testing.T) {
		Run(t, func(t *testing.T) dht.DHT {
			return dht.WithCrashPoints(factory(t))
		}, Options{})
	})

	t.Run("DeterministicReplay", func(t *testing.T) {
		// The same schedule over the same operation sequence must fail the
		// same ops, run after run and after Reset.
		script := func(c *dht.CrashPoints) []int {
			var failed []int
			for i := 0; i < 12; i++ {
				key := fmt.Sprintf("k-%d", i%4)
				var err error
				if i%3 == 0 {
					err = c.Put(ctx, key, []byte{byte(i)})
				} else {
					_, err = c.Get(ctx, key)
					if errors.Is(err, dht.ErrNotFound) {
						err = nil
					}
				}
				if errors.Is(err, dht.ErrCrashed) {
					failed = append(failed, i)
				} else if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			return failed
		}
		rules := []dht.CrashRule{
			{Op: dht.OpPut, N: 2},
			{Op: dht.OpGet, Key: func(k string) bool { return strings.HasSuffix(k, "-2") }, N: 1},
		}
		c1 := dht.WithCrashPoints(factory(t), rules...)
		f1 := script(c1)
		c2 := dht.WithCrashPoints(factory(t), rules...)
		f2 := script(c2)
		if fmt.Sprint(f1) != fmt.Sprint(f2) {
			t.Fatalf("replay diverged: first run failed ops %v, second %v", f1, f2)
		}
		if len(f1) != 2 {
			t.Fatalf("failed ops %v, want exactly the 2nd put and the first get of a -2 key", f1)
		}
		c1.Reset()
		if f3 := script(c1); fmt.Sprint(f3) != fmt.Sprint(f1) {
			t.Fatalf("replay after Reset diverged: %v vs %v", f3, f1)
		}
	})

	t.Run("CrashAfterPutIsDurable", func(t *testing.T) {
		// After=true loses the acknowledgement, not the write: the caller
		// sees ErrCrashed but the value is stored.
		inner := factory(t)
		c := dht.WithCrashPoints(inner, dht.CrashRule{Op: dht.OpPut, N: 1, After: true})
		if err := c.Put(ctx, "k", []byte{1}); !errors.Is(err, dht.ErrCrashed) {
			t.Fatalf("Put = %v, want ErrCrashed", err)
		}
		if v, err := inner.Get(ctx, "k"); err != nil || len(v.([]byte)) != 1 {
			t.Fatalf("inner.Get after crash-after-put = %v, %v; write must be durable", v, err)
		}
		if err := c.Put(ctx, "k2", []byte{2}); err != nil {
			t.Fatalf("Put after non-halting rule = %v, want success", err)
		}
	})

	t.Run("HaltKillsEverything", func(t *testing.T) {
		c := dht.WithCrashPoints(factory(t), dht.CrashRule{Op: dht.OpPut, N: 2, Halt: true})
		if err := c.Put(ctx, "a", []byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := c.Put(ctx, "b", []byte{2}); !errors.Is(err, dht.ErrCrashed) {
			t.Fatalf("2nd Put = %v, want ErrCrashed", err)
		}
		if !c.Crashed() {
			t.Fatal("Crashed() = false after halting rule fired")
		}
		if _, err := c.Get(ctx, "a"); !errors.Is(err, dht.ErrCrashed) {
			t.Fatalf("Get after halt = %v, want ErrCrashed", err)
		}
		if err := c.Write(ctx, "a", []byte{3}); !errors.Is(err, dht.ErrCrashed) {
			t.Fatalf("Write after halt = %v, want ErrCrashed", err)
		}
		c.Reset()
		if c.Crashed() {
			t.Fatal("Crashed() = true after Reset")
		}
		if err := c.Put(ctx, "c", []byte{4}); err != nil {
			t.Fatalf("Put after Reset = %v (schedule must restart, 1st put passes)", err)
		}
	})

	t.Run("TransientClassification", func(t *testing.T) {
		// The first firing rule wins and ends the op's evaluation, so the
		// second rule's counter first advances on the second Get.
		c := dht.WithCrashPoints(factory(t),
			dht.CrashRule{Op: dht.OpGet, N: 1, Transient: true},
			dht.CrashRule{Op: dht.OpGet, N: 1},
		)
		_, err := c.Get(ctx, "k")
		if !errors.Is(err, dht.ErrCrashed) || !dht.IsTransient(err) {
			t.Fatalf("transient rule: err %v, IsTransient %v", err, dht.IsTransient(err))
		}
		_, err = c.Get(ctx, "k")
		if !errors.Is(err, dht.ErrCrashed) || dht.IsTransient(err) {
			t.Fatalf("plain rule must not be transient: %v", err)
		}
	})

	t.Run("BatchAlignsWithPerOp", func(t *testing.T) {
		// A schedule must count a batched round key by key, in slice order,
		// so the Nth-op rule fires on the same logical operation whether
		// the client batches or not.
		keys := []string{"a", "b", "c", "d", "e"}
		run := func(batched bool) (failed []int, ops int) {
			c := dht.WithCrashPoints(factory(t), dht.CrashRule{Op: dht.OpPut, N: 3})
			kvs := make([]dht.KV, len(keys))
			for i, k := range keys {
				kvs[i] = dht.KV{Key: k, Val: []byte{byte(i)}}
			}
			var errs []error
			if batched {
				errs = dht.DoPutBatch(ctx, c, kvs)
			} else {
				for _, kv := range kvs {
					errs = append(errs, c.Put(ctx, kv.Key, kv.Val))
				}
			}
			for i, err := range errs {
				if errors.Is(err, dht.ErrCrashed) {
					failed = append(failed, i)
				} else if err != nil {
					t.Fatalf("slot %d: %v", i, err)
				}
			}
			return failed, c.Ops()
		}
		pf, pops := run(false)
		bf, bops := run(true)
		if fmt.Sprint(pf) != fmt.Sprint(bf) {
			t.Fatalf("failed slots diverge: per-op %v, batched %v", pf, bf)
		}
		if fmt.Sprint(pf) != "[2]" {
			t.Fatalf("failed slots %v, want exactly slot 2 (the 3rd put)", pf)
		}
		if pops != bops || pops != len(keys) {
			t.Fatalf("op counts diverge: per-op %d, batched %d, want %d", pops, bops, len(keys))
		}
	})

	t.Run("ConditionalKindsScheduled", func(t *testing.T) {
		// The conditional op kinds are index-visible operation classes:
		// rules match them precisely (never each other, never plain puts),
		// ordinals count per kind, and After keeps the same durable-effect
		// semantics the plain kinds have.
		inner := factory(t)
		c := dht.WithCrashPoints(inner,
			dht.CrashRule{Op: dht.OpCreateIf, N: 1, After: true},
			dht.CrashRule{Op: dht.OpPutIf, N: 2},
			dht.CrashRule{Op: dht.OpWriteIf, N: 1},
			dht.CrashRule{Op: dht.OpRemoveIf, N: 1},
		)
		if err := dht.DoCreateIf(ctx, c, "a", &EpochValue{Epoch: 1, Body: "v1"}); !errors.Is(err, dht.ErrCrashed) {
			t.Fatalf("CreateIf = %v, want ErrCrashed (After rule)", err)
		}
		if body, _ := condBody(t, inner, "a"); body != "v1" {
			t.Fatalf("crash-after-create not durable: %q", body)
		}
		if err := dht.DoPutIf(ctx, c, "a", &EpochValue{Epoch: 2, Body: "v2"}, 1); err != nil {
			t.Fatalf("1st PutIf = %v, want success (rule fires on the 2nd)", err)
		}
		if err := dht.DoPutIf(ctx, c, "a", &EpochValue{Epoch: 3, Body: "v3"}, 2); !errors.Is(err, dht.ErrCrashed) {
			t.Fatalf("2nd PutIf = %v, want ErrCrashed", err)
		}
		if body, epoch := condBody(t, inner, "a"); body != "v2" || epoch != 2 {
			t.Fatalf("crashed-before PutIf landed: %q/%d, want v2/2", body, epoch)
		}
		if err := dht.DoWriteIf(ctx, c, "a", &EpochValue{Epoch: 3, Body: "v3"}, 2); !errors.Is(err, dht.ErrCrashed) {
			t.Fatalf("WriteIf = %v, want ErrCrashed", err)
		}
		if err := dht.DoRemoveIf(ctx, c, "a", 2); !errors.Is(err, dht.ErrCrashed) {
			t.Fatalf("RemoveIf = %v, want ErrCrashed", err)
		}
		if body, _ := condBody(t, inner, "a"); body != "v2" {
			t.Fatalf("crashed conditional ops disturbed the store: %q", body)
		}
		if got, want := c.Ops(), 5; got != want {
			t.Fatalf("Ops() = %d, want %d (each conditional op counts once)", got, want)
		}
	})

	t.Run("BatchCrashAfterPut", func(t *testing.T) {
		// In a batched round, After=true keeps the effect for exactly the
		// scheduled slot while its error stands; other slots are untouched.
		inner := factory(t)
		c := dht.WithCrashPoints(inner, dht.CrashRule{Op: dht.OpPut, N: 2, After: true, Halt: true})
		kvs := []dht.KV{
			{Key: "x", Val: []byte{1}},
			{Key: "y", Val: []byte{2}},
			{Key: "z", Val: []byte{3}},
		}
		errs := dht.DoPutBatch(ctx, c, kvs)
		if errs[0] != nil {
			t.Fatalf("slot 0 = %v, want success", errs[0])
		}
		if !errors.Is(errs[1], dht.ErrCrashed) || !errors.Is(errs[2], dht.ErrCrashed) {
			t.Fatalf("slots 1,2 = %v, %v; want ErrCrashed for the fired rule and the halt", errs[1], errs[2])
		}
		if _, err := inner.Get(ctx, "y"); err != nil {
			t.Fatalf("crash-after-put slot not durable: %v", err)
		}
		if _, err := inner.Get(ctx, "z"); !errors.Is(err, dht.ErrNotFound) {
			t.Fatalf("halted slot must not land, Get(z) = %v", err)
		}
	})
}
